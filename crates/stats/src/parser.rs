//! Parser for the declarative table language (§3.2).
//!
//! ```text
//! table name=sample condition=(start < 2)
//!       x=("node", node) x=("processor", cpu)
//!       y=("avg(duration)", dura, avg)
//! ```

use ute_core::error::{Result, UteError};

use crate::expr::{BinOp, Expr};
use crate::table::{Agg, TableSpec};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(f64),
    LParen,
    RParen,
    Comma,
    Assign,
    Op(BinOp),
    Minus, // ambiguous: subtraction or negation
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> UteError {
        UteError::Parse {
            msg: msg.to_string(),
            pos: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn tokens(mut self) -> Result<Vec<(Tok, usize)>> {
        let mut out = Vec::new();
        while let Some(c) = self.peek() {
            let at = self.pos;
            match c {
                b' ' | b'\t' | b'\n' | b'\r' => {
                    self.pos += 1;
                }
                b'#' => {
                    while self.peek().map(|c| c != b'\n').unwrap_or(false) {
                        self.pos += 1;
                    }
                }
                b'(' => {
                    out.push((Tok::LParen, at));
                    self.pos += 1;
                }
                b')' => {
                    out.push((Tok::RParen, at));
                    self.pos += 1;
                }
                b',' => {
                    out.push((Tok::Comma, at));
                    self.pos += 1;
                }
                b'+' => {
                    out.push((Tok::Op(BinOp::Add), at));
                    self.pos += 1;
                }
                b'-' => {
                    out.push((Tok::Minus, at));
                    self.pos += 1;
                }
                b'*' => {
                    out.push((Tok::Op(BinOp::Mul), at));
                    self.pos += 1;
                }
                b'/' => {
                    out.push((Tok::Op(BinOp::Div), at));
                    self.pos += 1;
                }
                b'<' | b'>' | b'=' | b'!' | b'&' | b'|' => {
                    let two = (c, self.src.get(self.pos + 1).copied());
                    let (tok, len) = match two {
                        (b'<', Some(b'=')) => (Tok::Op(BinOp::Le), 2),
                        (b'>', Some(b'=')) => (Tok::Op(BinOp::Ge), 2),
                        (b'=', Some(b'=')) => (Tok::Op(BinOp::Eq), 2),
                        (b'!', Some(b'=')) => (Tok::Op(BinOp::Ne), 2),
                        (b'&', Some(b'&')) => (Tok::Op(BinOp::And), 2),
                        (b'|', Some(b'|')) => (Tok::Op(BinOp::Or), 2),
                        (b'<', _) => (Tok::Op(BinOp::Lt), 1),
                        (b'>', _) => (Tok::Op(BinOp::Gt), 1),
                        (b'=', _) => (Tok::Assign, 1),
                        _ => return Err(self.err("unexpected operator character")),
                    };
                    out.push((tok, at));
                    self.pos += len;
                }
                b'"' => {
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().map(|c| c != b'"').unwrap_or(false) {
                        self.pos += 1;
                    }
                    if self.peek().is_none() {
                        return Err(self.err("unterminated string"));
                    }
                    let s = std::str::from_utf8(&self.src[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in string"))?
                        .to_string();
                    self.pos += 1;
                    out.push((Tok::Str(s), at));
                }
                b'0'..=b'9' | b'.' => {
                    let start = self.pos;
                    while self
                        .peek()
                        .map(|c| c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E')
                        .unwrap_or(false)
                    {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                    let v: f64 = s
                        .parse()
                        .map_err(|_| self.err(&format!("bad number `{s}`")))?;
                    out.push((Tok::Num(v), at));
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let start = self.pos;
                    while self
                        .peek()
                        .map(|c| c.is_ascii_alphanumeric() || c == b'_')
                        .unwrap_or(false)
                    {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.src[start..self.pos])
                        .unwrap()
                        .to_string();
                    out.push((Tok::Ident(s), at));
                }
                other => return Err(self.err(&format!("unexpected character `{}`", other as char))),
            }
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: &str) -> UteError {
        let pos = self
            .toks
            .get(self.pos)
            .or(self.toks.last())
            .map(|(_, p)| *p)
            .unwrap_or(0);
        UteError::Parse {
            msg: msg.to_string(),
            pos,
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<()> {
        match self.next() {
            Some(t) if t == *want => Ok(()),
            _ => Err(self.err(&format!("expected {what}"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => Err(self.err(&format!("expected {what}"))),
        }
    }

    /// Precedence-climbing expression parser.
    fn expr(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.atom()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Op(op)) => *op,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            if op.precedence() < min_prec {
                break;
            }
            self.next();
            let rhs = self.expr(op.precedence() + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn atom(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Tok::Num(v)) => Ok(Expr::Num(v)),
            Some(Tok::Minus) => Ok(Expr::Neg(Box::new(self.atom()?))),
            Some(Tok::LParen) => {
                let e = self.expr(1)?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) if name == "bin" => {
                self.expect(&Tok::LParen, "`(` after bin")?;
                let e = self.expr(1)?;
                self.expect(&Tok::Comma, "`,` in bin(expr, n)")?;
                let n = match self.next() {
                    Some(Tok::Num(v)) if v >= 1.0 && v.fract() == 0.0 => v as u32,
                    _ => return Err(self.err("bin() needs a positive integer bin count")),
                };
                self.expect(&Tok::RParen, "`)` after bin arguments")?;
                Ok(Expr::TimeBin(Box::new(e), n))
            }
            Some(Tok::Ident(name)) => Ok(Expr::Field(name)),
            _ => Err(self.err("expected expression")),
        }
    }

    fn table(&mut self) -> Result<TableSpec> {
        let mut spec = TableSpec {
            name: String::new(),
            condition: None,
            xs: Vec::new(),
            ys: Vec::new(),
        };
        loop {
            match self.peek() {
                Some(Tok::Ident(kw)) if kw == "table" => break,
                None => break,
                _ => {}
            }
            let key = self.ident("table attribute (name/condition/x/y)")?;
            self.expect(&Tok::Assign, "`=`")?;
            match key.as_str() {
                "name" => spec.name = self.ident("table name")?,
                "condition" => {
                    self.expect(&Tok::LParen, "`(`")?;
                    let e = self.expr(1)?;
                    self.expect(&Tok::RParen, "`)`")?;
                    spec.condition = Some(e);
                }
                "x" => {
                    self.expect(&Tok::LParen, "`(`")?;
                    let label = match self.next() {
                        Some(Tok::Str(s)) => s,
                        _ => return Err(self.err("x needs a quoted label")),
                    };
                    self.expect(&Tok::Comma, "`,`")?;
                    let e = self.expr(1)?;
                    self.expect(&Tok::RParen, "`)`")?;
                    spec.xs.push((label, e));
                }
                "y" => {
                    self.expect(&Tok::LParen, "`(`")?;
                    let label = match self.next() {
                        Some(Tok::Str(s)) => s,
                        _ => return Err(self.err("y needs a quoted label")),
                    };
                    self.expect(&Tok::Comma, "`,`")?;
                    let e = self.expr(1)?;
                    self.expect(&Tok::Comma, "`,` before the aggregator")?;
                    let agg = match self.ident("aggregator")?.as_str() {
                        "avg" => Agg::Avg,
                        "sum" => Agg::Sum,
                        "count" => Agg::Count,
                        "min" => Agg::Min,
                        "max" => Agg::Max,
                        other => return Err(self.err(&format!("unknown aggregator `{other}`"))),
                    };
                    self.expect(&Tok::RParen, "`)`")?;
                    spec.ys.push((label, e, agg));
                }
                other => return Err(self.err(&format!("unknown table attribute `{other}`"))),
            }
        }
        if spec.name.is_empty() {
            return Err(self.err("table needs a name"));
        }
        if spec.ys.is_empty() {
            return Err(self.err("table needs at least one y"));
        }
        Ok(spec)
    }
}

/// Parses a whole program: one or more `table …` declarations.
pub fn parse_program(src: &str) -> Result<Vec<TableSpec>> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser { toks, pos: 0 };
    let mut out = Vec::new();
    while p.peek().is_some() {
        match p.next() {
            Some(Tok::Ident(kw)) if kw == "table" => out.push(p.table()?),
            _ => return Err(p.err("expected `table`")),
        }
    }
    if out.is_empty() {
        return Err(UteError::Parse {
            msg: "program declares no tables".into(),
            pos: 0,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_example() {
        let spec = parse_program(
            r#"table name=sample condition=(start < 2)
               x=("node", node) x=("processor", cpu)
               y=("avg(duration)", dura, avg)"#,
        )
        .unwrap();
        assert_eq!(spec.len(), 1);
        let t = &spec[0];
        assert_eq!(t.name, "sample");
        assert!(t.condition.is_some());
        assert_eq!(t.xs.len(), 2);
        assert_eq!(t.xs[0].0, "node");
        assert_eq!(t.ys.len(), 1);
        assert_eq!(t.ys[0].0, "avg(duration)");
        assert_eq!(t.ys[0].2, Agg::Avg);
    }

    #[test]
    fn parses_multiple_tables_and_comments() {
        let spec = parse_program(
            "# Figure 6 style\n\
             table name=a y=(\"n\", dura, count)\n\
             table name=b condition=(interesting && dura > 0.001) \
             x=(\"bin\", bin(start, 50)) y=(\"sum\", dura, sum)",
        )
        .unwrap();
        assert_eq!(spec.len(), 2);
        assert_eq!(
            spec[1].xs[0].1,
            Expr::TimeBin(Box::new(Expr::field("start")), 50)
        );
    }

    #[test]
    fn precedence_is_sane() {
        let spec = parse_program(
            "table name=t condition=(start + 1 * 2 < 4 && node == 0) y=(\"c\", dura, count)",
        )
        .unwrap();
        // (start + (1*2)) < 4) && (node == 0)
        match spec[0].condition.as_ref().unwrap() {
            Expr::Bin(BinOp::And, l, _) => match l.as_ref() {
                Expr::Bin(BinOp::Lt, add, _) => {
                    assert!(matches!(add.as_ref(), Expr::Bin(BinOp::Add, _, _)))
                }
                other => panic!("wrong tree: {other:?}"),
            },
            other => panic!("wrong tree: {other:?}"),
        }
    }

    #[test]
    fn negation_and_subtraction() {
        let spec =
            parse_program("table name=t condition=(end - start > -0.5) y=(\"c\", dura, count)")
                .unwrap();
        assert!(spec[0].condition.is_some());
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_program("table name=t y=(\"c\", dura, weird)").unwrap_err();
        match err {
            UteError::Parse { msg, .. } => assert!(msg.contains("weird"), "{msg}"),
            other => panic!("wrong error {other}"),
        }
        assert!(parse_program("").is_err());
        assert!(parse_program("table y=(\"c\", dura, count)").is_err()); // no name
        assert!(parse_program("table name=t").is_err()); // no y
        assert!(parse_program("table name=t y=(\"c\", dura, count) garbage").is_err());
        assert!(parse_program("table name=t condition=(start < ) y=(\"c\", dura, count)").is_err());
        assert!(parse_program("table name=t y=(\"c\", bin(start, 0), count)").is_err());
    }
}
