//! Executes table specifications over interval streams.

use std::collections::BTreeMap;

use ute_core::error::Result;
use ute_core::time::TICKS_PER_SEC;
use ute_format::profile::Profile;
use ute_format::record::Interval;
use ute_format::state::StateCode;

use crate::expr::EvalContext;
use crate::table::{Cell, Key, Table, TableSpec};

/// Runs every spec over the interval stream, producing one table each.
///
/// Clock bookkeeping records are excluded up front: they carry no
/// activity and their pseudo-thread would pollute groupings.
pub fn run_tables(
    specs: &[TableSpec],
    profile: &Profile,
    intervals: &[Interval],
) -> Result<Vec<Table>> {
    let _span = ute_obs::Span::enter("stats", format!("run {} tables", specs.len()));
    let eval_start = std::time::Instant::now();
    ute_obs::counter("stats/tables_run").add(specs.len() as u64);
    ute_obs::counter("stats/records_scanned").add(intervals.len() as u64);
    let span_start =
        intervals.iter().map(|iv| iv.start).min().unwrap_or(0) as f64 / TICKS_PER_SEC as f64;
    let span_end = intervals
        .iter()
        .map(|iv| iv.end())
        .max()
        .unwrap_or(0)
        .max(1) as f64
        / TICKS_PER_SEC as f64;
    let ctx = EvalContext {
        span_start,
        span_end,
    };
    let mut acc: Vec<BTreeMap<Vec<Key>, Vec<Cell>>> =
        specs.iter().map(|_| BTreeMap::new()).collect();
    for iv in intervals {
        if iv.itype.state == StateCode::CLOCK || iv.itype.state == StateCode::GAP {
            continue;
        }
        for (spec, groups) in specs.iter().zip(&mut acc) {
            if let Some(cond) = &spec.condition {
                // A record type that lacks a field named in the condition
                // cannot match it — skip rather than error, so one program
                // can range over heterogeneous record types.
                match cond.eval(&ctx, profile, iv) {
                    Ok(v) if v != 0.0 => {}
                    Ok(_) => continue,
                    Err(ute_core::error::UteError::NotFound(_)) => continue,
                    Err(e) => return Err(e),
                }
            }
            let mut key = Vec::with_capacity(spec.xs.len());
            for (_, e) in &spec.xs {
                key.push(Key(e.eval(&ctx, profile, iv)?));
            }
            let cells = groups
                .entry(key)
                .or_insert_with(|| vec![Cell::default(); spec.ys.len()]);
            for ((_, e, _), cell) in spec.ys.iter().zip(cells) {
                cell.add(e.eval(&ctx, profile, iv)?);
            }
        }
    }
    let tables: Vec<Table> = specs
        .iter()
        .zip(acc)
        .map(|(spec, groups)| Table {
            name: spec.name.clone(),
            x_labels: spec.xs.iter().map(|(l, _)| l.clone()).collect(),
            y_labels: spec.ys.iter().map(|(l, _, _)| l.clone()).collect(),
            rows: groups
                .into_iter()
                .map(|(k, cells)| {
                    let ys = spec
                        .ys
                        .iter()
                        .zip(cells)
                        .map(|((_, _, agg), c)| c.finish(*agg))
                        .collect();
                    (k, ys)
                })
                .collect(),
        })
        .collect();
    ute_obs::counter("stats/rows_emitted")
        .add(tables.iter().map(|t| t.rows.len() as u64).sum::<u64>());
    ute_obs::histogram("stats/eval_ns").record(eval_start.elapsed().as_nanos() as u64);
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use ute_core::ids::{CpuId, LogicalThreadId, NodeId};
    use ute_format::record::IntervalType;
    use ute_format::value::Value;

    fn stream(profile: &Profile) -> Vec<Interval> {
        let mut out = Vec::new();
        // Two nodes × two cpus, MPI_Barrier intervals of varying length.
        for node in 0..2u16 {
            for cpu in 0..2u16 {
                for k in 0..3u64 {
                    let iv = Interval::basic(
                        IntervalType::complete(StateCode::mpi(ute_core::event::MpiOp::Barrier)),
                        k * TICKS_PER_SEC,           // 0,1,2 s
                        (100 + 100 * k) * 1_000_000, // 0.1/0.2/0.3 s
                        CpuId(cpu),
                        NodeId(node),
                        LogicalThreadId(cpu),
                    )
                    .with_extra(profile, "rank", Value::Uint(node as u64))
                    .with_extra(profile, "peer", Value::Uint(0))
                    .with_extra(profile, "msgSizeSent", Value::Uint(8))
                    .with_extra(profile, "address", Value::Uint(0));
                    out.push(iv);
                }
                // Running background (not interesting).
                out.push(Interval::basic(
                    IntervalType::complete(StateCode::RUNNING),
                    0,
                    3 * TICKS_PER_SEC,
                    CpuId(cpu),
                    NodeId(node),
                    LogicalThreadId(cpu),
                ));
            }
        }
        out
    }

    #[test]
    fn papers_example_runs() {
        let p = Profile::standard();
        let specs = parse_program(
            r#"table name=sample condition=(start < 2)
               x=("node", node) x=("processor", cpu)
               y=("avg(duration)", dura, avg)"#,
        )
        .unwrap();
        let tables = run_tables(&specs, &p, &stream(&p)).unwrap();
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 4); // 2 nodes × 2 cpus
                                     // Started < 2 s: barriers at 0 s (0.1) and 1 s (0.2) plus the
                                     // Running interval (3.0) → avg = (0.1+0.2+3.0)/3 = 1.1.
        let ys = t.row(&[0.0, 0.0]).unwrap();
        assert!((ys[0] - 1.1).abs() < 1e-9, "avg {}", ys[0]);
    }

    #[test]
    fn figure6_style_binned_table() {
        let p = Profile::standard();
        let specs = parse_program(
            r#"table name=fig6 condition=(interesting)
               x=("node", node) x=("bin", bin(start, 3))
               y=("sum(duration)", dura, sum)"#,
        )
        .unwrap();
        let tables = run_tables(&specs, &p, &stream(&p)).unwrap();
        let t = &tables[0];
        // Span is [0, 3.2) s; 3 bins of ~1.067 s. Barriers start at
        // 0, 1, 2 s → bins 0, 0, 1 per cpu... compute: bin = floor(start/span*3).
        // span_end = max end = 3.2 (2s + 0.3? no: running ends at 3.0;
        // barrier at 2 s lasts .3 → 2.3; span_end = 3.0). bin width 1.0.
        // starts 0→bin0, 1→bin1, 2→bin2.
        for node in 0..2 {
            for bin in 0..3 {
                let ys = t.row(&[node as f64, bin as f64]).unwrap();
                let expect = 2.0 * (0.1 + 0.1 * bin as f64); // two cpus
                assert!(
                    (ys[0] - expect).abs() < 1e-9,
                    "node {node} bin {bin}: {} vs {expect}",
                    ys[0]
                );
            }
        }
    }

    #[test]
    fn count_and_minmax() {
        let p = Profile::standard();
        let specs = parse_program(
            r#"table name=t condition=(interesting)
               y=("n", dura, count) y=("min", dura, min) y=("max", dura, max)"#,
        )
        .unwrap();
        let tables = run_tables(&specs, &p, &stream(&p)).unwrap();
        let t = &tables[0];
        let ys = t.row(&[]).unwrap();
        assert_eq!(ys[0], 12.0);
        assert!((ys[1] - 0.1).abs() < 1e-9);
        assert!((ys[2] - 0.3).abs() < 1e-9);
    }

    #[test]
    fn empty_stream_gives_empty_tables() {
        let p = Profile::standard();
        let specs = parse_program(r#"table name=t y=("n", dura, count)"#).unwrap();
        let tables = run_tables(&specs, &p, &[]).unwrap();
        assert!(tables[0].rows.is_empty());
    }
}
