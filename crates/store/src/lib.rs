//! # ute-store — crash-safe run durability
//!
//! A `kill -9`, disk-full, or panic mid-run must never cost more than
//! the stage that was interrupted, and must never leave a half-written
//! artifact where a reader can find it. This crate is the durability
//! substrate the pipeline (and the future `ute serve` daemon) runs on:
//!
//! * **Run journal** ([`journal::RunJournal`]) — an append-only,
//!   fsync'd, self-describing record log (`journal.utj`) in the run's
//!   output directory: run config (+ hash), per-stage start / commit /
//!   publish records with content hashes of every artifact. The tail is
//!   allowed to be torn — replay discards a truncated or checksum-failed
//!   last line instead of erroring, exactly the state a mid-append kill
//!   leaves behind.
//! * **Atomic artifact store** ([`artifact::ArtifactStore`]) — every
//!   artifact is written to `NAME.tmp.<pid>` and fsync'd; it is renamed
//!   into place only *after* the stage's journal commit record is
//!   durable, so a reader either sees the complete artifact or nothing.
//!   Startup GC removes stale temps from dead runs.
//! * **Resource guardrails** — a configurable disk budget is enforced
//!   before every artifact write, and `ENOSPC` surfaces as a typed
//!   [`StoreError`] carrying the stage and path instead of an abort.
//! * **Chaos points** ([`chaos`]) — every durability transition crosses
//!   a numbered abort point. A seeded harness can kill the process (or
//!   soft-abort in tests) at any point, then prove `ute resume` restores
//!   byte-identical output.
//!
//! The recovery invariant, relied on by `ute resume`:
//!
//! > For every stage, either (a) no commit record exists — the stage
//! > re-runs from its (already published) inputs, or (b) a commit record
//! > with content hashes exists — publication can be completed or
//! > verified from temps/finals, or the stage re-runs. Stages are
//! > deterministic functions of published inputs, so any replay point
//! > converges to the same bytes.

pub mod artifact;
pub mod chaos;
pub mod error;
pub mod journal;

pub use artifact::{ArtifactMeta, ArtifactStore};
pub use error::StoreError;
pub use journal::{JournalRecord, ReplayState, RunJournal, StageStatus};

use std::fs::File;
use std::io::Write;
use std::path::Path;

/// FNV-1a 64-bit content hash — the workspace has no external crypto
/// dependency, and the store needs collision resistance against
/// *accidental* corruption (torn writes, truncation), not an adversary.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fsyncs a directory so a rename performed inside it is durable.
/// Best-effort: some platforms cannot open directories for sync.
pub(crate) fn fsync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Whether an I/O error means the device is out of space.
pub(crate) fn is_disk_full(e: &std::io::Error) -> bool {
    // ENOSPC (28) on POSIX; ErrorKind::StorageFull is not yet stable on
    // the toolchain floor this workspace supports.
    e.raw_os_error() == Some(28)
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the target, directory fsync. The standalone-CLI
/// cousin of the journaled publish protocol — a crash leaves either the
/// old file or the new one, never a torn hybrid. The temp carries the
/// writing pid so startup GC can identify leftovers from dead runs.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| StoreError::BadName {
            name: path.display().to_string(),
        })?;
    let dir = path.parent().unwrap_or(Path::new("."));
    let tmp = dir.join(format!("{name}.tmp.{}", std::process::id()));
    let write = || -> std::io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
        Ok(())
    };
    write().map_err(|source| {
        let _ = std::fs::remove_file(&tmp);
        StoreError::io("write", &tmp, source)
    })?;
    std::fs::rename(&tmp, path).map_err(|source| {
        let _ = std::fs::remove_file(&tmp);
        StoreError::io("publish", path, source)
    })?;
    fsync_dir(dir);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_is_stable_and_input_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"abc"), fnv64(b"abd"));
        assert_ne!(fnv64(b"abc"), fnv64(b"ab"));
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("ute_store_aw_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("artifact.bin");
        atomic_write(&target, b"one").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"one");
        atomic_write(&target, b"two").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"two");
        let temps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .contains(".tmp.")
            })
            .collect();
        assert!(temps.is_empty(), "leftover temps: {temps:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
