//! The atomic artifact store: temp-write / commit / rename publication.
//!
//! Every stage output goes through the same protocol, driven by the
//! stage runner on the main thread:
//!
//! 1. [`ArtifactStore::write_temp`] — bytes land in `NAME.tmp.<pid>` in
//!    the run directory and are fsync'd. A disk-budget check runs first;
//!    `ENOSPC` surfaces as a typed, graceful error. A chaos point sits
//!    *mid-write*, so an armed abort leaves a genuinely torn temp.
//! 2. The caller appends the journal `stage-commit` record (content
//!    hashes of every temp) — the durability pivot.
//! 3. [`ArtifactStore::promote`] — rename temp → final, directory fsync.
//!    Readers only ever see complete artifacts.
//!
//! On resume, [`ArtifactStore::verify_final`] / [`verify_temp`] check
//! published or committed bytes against the journal's hashes, and
//! [`ArtifactStore::gc_stale_temps`] sweeps `*.tmp.*` leftovers from
//! dead runs (sparing temps a committed-but-unpublished stage still
//! needs).

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::chaos;
use crate::error::StoreError;
use crate::{fnv64, fsync_dir};

/// One committed artifact: final name, content hash, byte length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactMeta {
    /// Final file name inside the run directory (no separators).
    pub name: String,
    /// [`fnv64`] of the full content.
    pub hash: u64,
    /// Content length in bytes.
    pub len: u64,
}

/// An artifact store rooted at one run directory.
pub struct ArtifactStore {
    dir: PathBuf,
    /// Remaining disk budget in bytes, if one is configured.
    budget: Option<u64>,
}

impl ArtifactStore {
    /// A store over `dir` with no disk budget.
    pub fn new(dir: impl Into<PathBuf>) -> ArtifactStore {
        ArtifactStore {
            dir: dir.into(),
            budget: None,
        }
    }

    /// Caps the total bytes this store will write (temps included).
    pub fn with_budget(mut self, budget: Option<u64>) -> ArtifactStore {
        self.budget = budget;
        self
    }

    /// The run directory this store publishes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The temp name an artifact uses while owned by pid `pid`.
    pub fn temp_name(name: &str, pid: u32) -> String {
        format!("{name}.tmp.{pid}")
    }

    fn check_name(name: &str) -> Result<(), StoreError> {
        if name.is_empty()
            || name.contains(['/', '\\', ':', ',', ' ', '\n', '\t'])
            || name.contains(".tmp.")
        {
            return Err(StoreError::BadName {
                name: name.to_string(),
            });
        }
        Ok(())
    }

    /// Writes one artifact's bytes to its temp file (durably), enforcing
    /// the disk budget *before* touching the disk. Returns the metadata
    /// the caller records in the journal commit.
    pub fn write_temp(
        &mut self,
        stage: &str,
        name: &str,
        bytes: &[u8],
    ) -> Result<ArtifactMeta, StoreError> {
        Self::check_name(name)?;
        let len = bytes.len() as u64;
        if let Some(budget) = self.budget {
            if len > budget {
                return Err(StoreError::DiskBudget {
                    stage: stage.to_string(),
                    needed: len,
                    remaining: budget,
                });
            }
            self.budget = Some(budget - len);
        }
        let tmp = self.dir.join(Self::temp_name(name, std::process::id()));
        let half = bytes.len() / 2;
        let write = |f: &mut File, chunk: &[u8]| -> Result<(), StoreError> {
            f.write_all(chunk)
                .map_err(|e| StoreError::write_failure(stage, &tmp, e))
        };
        let mut f = File::create(&tmp).map_err(|e| StoreError::write_failure(stage, &tmp, e))?;
        write(&mut f, &bytes[..half])?;
        // An abort armed here leaves a genuinely torn temp on disk —
        // exactly what a kill mid-write produces. Unarmed, this is one
        // atomic load.
        chaos::point(|| format!("mid_write:{stage}:{name}"))?;
        write(&mut f, &bytes[half..])?;
        f.sync_data()
            .map_err(|e| StoreError::write_failure(stage, &tmp, e))?;
        drop(f);
        chaos::point(|| format!("temp_durable:{stage}:{name}"))?;
        Ok(ArtifactMeta {
            name: name.to_string(),
            hash: fnv64(bytes),
            len,
        })
    }

    /// Renames a committed temp into its final place and fsyncs the
    /// directory. Idempotent on resume via [`ArtifactStore::verify_final`].
    pub fn promote(&self, stage: &str, meta: &ArtifactMeta, pid: u32) -> Result<(), StoreError> {
        let tmp = self.dir.join(Self::temp_name(&meta.name, pid));
        let fin = self.dir.join(&meta.name);
        std::fs::rename(&tmp, &fin)
            .map_err(|e| StoreError::io(&format!("publish (stage {stage})"), &fin, e))?;
        fsync_dir(&self.dir);
        ute_obs::counter("store/artifacts_published").inc();
        chaos::point(|| format!("published:{stage}:{}", meta.name))?;
        Ok(())
    }

    /// Whether the *final* file exists with exactly the committed bytes.
    pub fn verify_final(&self, meta: &ArtifactMeta) -> bool {
        self.verify_at(&self.dir.join(&meta.name), meta)
    }

    /// Whether the *temp* written by `pid` holds the committed bytes.
    pub fn verify_temp(&self, meta: &ArtifactMeta, pid: u32) -> bool {
        self.verify_at(&self.dir.join(Self::temp_name(&meta.name, pid)), meta)
    }

    fn verify_at(&self, path: &Path, meta: &ArtifactMeta) -> bool {
        ute_obs::counter("store/artifacts_verified").inc();
        match std::fs::read(path) {
            Ok(bytes) => bytes.len() as u64 == meta.len && fnv64(&bytes) == meta.hash,
            Err(_) => false,
        }
    }

    /// Removes every `*.tmp.*` file in the run directory except those
    /// named in `keep` (temps a committed-but-unpublished stage still
    /// needs). Returns how many were swept.
    pub fn gc_stale_temps(&self, keep: &[String]) -> Result<u64, StoreError> {
        let mut swept = 0;
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| StoreError::io("scan for stale temps", &self.dir, e))?;
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.contains(".tmp."))
            .collect();
        names.sort(); // deterministic sweep order
        for n in names {
            if keep.iter().any(|k| k == &n) {
                continue;
            }
            let p = self.dir.join(&n);
            std::fs::remove_file(&p).map_err(|e| StoreError::io("gc stale temp", &p, e))?;
            swept += 1;
        }
        ute_obs::counter("store/temps_gc").add(swept);
        Ok(swept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ute_artifact_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn temp_commit_promote_round_trip() {
        let dir = tmpdir("rt");
        let mut store = ArtifactStore::new(&dir);
        let meta = store
            .write_temp("convert", "a.ivl", b"hello intervals")
            .unwrap();
        assert_eq!(meta.len, 15);
        let pid = std::process::id();
        // Before promote: temp holds the bytes, final does not exist.
        assert!(store.verify_temp(&meta, pid));
        assert!(!store.verify_final(&meta));
        store.promote("convert", &meta, pid).unwrap();
        assert!(store.verify_final(&meta));
        assert_eq!(
            std::fs::read(dir.join("a.ivl")).unwrap(),
            b"hello intervals"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_is_enforced_before_the_write() {
        let dir = tmpdir("budget");
        let mut store = ArtifactStore::new(&dir).with_budget(Some(10));
        store.write_temp("trace", "small", b"12345678").unwrap();
        let e = store.write_temp("trace", "big", b"12345678").unwrap_err();
        assert!(e.is_resource_exhausted(), "{e}");
        // The rejected write left nothing on disk.
        assert!(!dir
            .join(ArtifactStore::temp_name("big", std::process::id()))
            .exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_sweeps_stale_temps_but_keeps_committed_ones() {
        let dir = tmpdir("gc");
        std::fs::write(dir.join("a.ivl.tmp.111"), b"stale").unwrap();
        std::fs::write(dir.join("b.ivl.tmp.222"), b"committed").unwrap();
        std::fs::write(dir.join("c.ivl"), b"published").unwrap();
        let store = ArtifactStore::new(&dir);
        let swept = store
            .gc_stale_temps(&["b.ivl.tmp.222".to_string()])
            .unwrap();
        assert_eq!(swept, 1);
        assert!(!dir.join("a.ivl.tmp.111").exists());
        assert!(dir.join("b.ivl.tmp.222").exists());
        assert!(dir.join("c.ivl").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_artifact_names_are_rejected() {
        let dir = tmpdir("names");
        let mut store = ArtifactStore::new(&dir);
        for bad in ["", "a/b", "a:b", "a,b", "x.tmp.1"] {
            let e = store.write_temp("trace", bad, b"x").unwrap_err();
            assert!(matches!(e, StoreError::BadName { .. }), "{bad}: {e}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
