//! Numbered abort points for the process-kill chaos harness.
//!
//! Every durability transition in the store — stage start, mid-artifact
//! write, temp durable, journal commit durable, publication — crosses a
//! global, monotonically numbered *abort point*. A clean run just counts
//! them (one relaxed atomic increment each — the same cost class as the
//! always-on metrics). The chaos harness uses the count two ways:
//!
//! * **Hard (process) abort** — the `UTE_STORE_ABORT=<n>` environment
//!   variable arms point `n` in a *child* process: crossing it calls
//!   [`std::process::abort`], which dies without unwinding, destructors,
//!   or buffered-write flushing — the in-process equivalent of
//!   `kill -9` at an exactly reproducible protocol state. `ute chaos`
//!   spawns the pipeline with this set (and can SIGKILL on a timer in
//!   `--mode timed` for the genuinely asynchronous variant).
//! * **Soft abort** — tests arm a point in-process with [`arm_soft`];
//!   crossing it returns [`StoreError::ChaosAbort`], which the stage
//!   runner propagates *without any cleanup*, leaving the directory in
//!   exactly the torn state a kill would. This gives deterministic
//!   in-test coverage of every protocol boundary without forking.
//!
//! Point numbering is deterministic for a given run configuration: all
//! store operations happen on the driving thread in stage order, never
//! on pipeline workers, so worker scheduling cannot reorder crossings.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::error::StoreError;

/// Environment variable arming a hard abort at a point index.
pub const ENV_ABORT: &str = "UTE_STORE_ABORT";

/// Points crossed by this process so far.
static CROSSED: AtomicU64 = AtomicU64::new(0);

/// Soft-armed point index, or -1 when disarmed.
static SOFT_AT: AtomicI64 = AtomicI64::new(-1);

fn env_abort_at() -> Option<u64> {
    static ARMED: OnceLock<Option<u64>> = OnceLock::new();
    *ARMED.get_or_init(|| {
        std::env::var(ENV_ABORT)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
    })
}

/// Total abort points this process has crossed. A clean run's total is
/// the seed space for the chaos harness.
pub fn points_crossed() -> u64 {
    CROSSED.load(Ordering::SeqCst)
}

/// Arms a soft (in-process, error-returning) abort at absolute point
/// index `n` (compared against the process-lifetime crossing counter).
pub fn arm_soft(n: u64) {
    SOFT_AT.store(n as i64, Ordering::SeqCst);
}

/// Disarms any soft abort.
pub fn disarm_soft() {
    SOFT_AT.store(-1, Ordering::SeqCst);
}

/// Crosses one abort point. Returns `Err(ChaosAbort)` if a soft abort is
/// armed at this index; never returns if a hard (env) abort is armed at
/// this index.
pub fn point(label: impl Fn() -> String) -> Result<(), StoreError> {
    let idx = CROSSED.fetch_add(1, Ordering::SeqCst);
    if env_abort_at() == Some(idx) {
        // Die like `kill -9`: no unwinding, no destructors, no flushes.
        eprintln!("ute: chaos: hard abort at point {idx} ({})", label());
        std::process::abort();
    }
    if SOFT_AT.load(Ordering::SeqCst) == idx as i64 {
        return Err(StoreError::ChaosAbort {
            point: idx,
            label: label(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_abort_fires_once_at_the_armed_index() {
        // Use indices far past anything other tests in this binary cross.
        let base = points_crossed();
        arm_soft(base + 2);
        assert!(point(|| "a".into()).is_ok());
        assert!(point(|| "b".into()).is_ok());
        let e = point(|| "c".into()).unwrap_err();
        assert!(e.is_chaos_abort(), "{e}");
        assert!(e.to_string().contains("(c)"), "{e}");
        // Counter advanced past the armed index: no refire.
        assert!(point(|| "d".into()).is_ok());
        disarm_soft();
    }
}
