//! Typed store errors carrying stage and path context.
//!
//! Every failure inside the durability layer names the stage that was
//! executing and the file that was being touched — a run directory can
//! hold hundreds of per-node artifacts, and "i/o error: no space left on
//! device" with no path is not actionable. Disk exhaustion gets its own
//! variants so callers can turn it into a graceful partial-results exit
//! (the journal stays consistent; `ute resume` picks the run back up)
//! instead of an abort.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use ute_core::error::UteError;

/// Errors produced by the journal and artifact store.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O failure on a specific file, during a named operation.
    Io {
        /// What the store was doing ("append journal", "write", ...).
        op: String,
        /// The file being touched.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A published or temp artifact's content hash does not match the
    /// journal's commit record.
    HashMismatch {
        /// The stage that committed the artifact.
        stage: String,
        /// The artifact path.
        path: PathBuf,
        /// Hash recorded at commit time.
        expected: u64,
        /// Hash of the bytes found on disk.
        actual: u64,
    },
    /// The journal file is structurally unusable (not just a torn tail,
    /// which replay tolerates — e.g. a bad header line).
    JournalCorrupt {
        /// The journal path.
        path: PathBuf,
        /// 1-based line of the failure.
        line: usize,
        /// What was wrong.
        what: String,
    },
    /// The configured disk budget would be exceeded by the next write.
    /// The run stops *before* the write, with the journal consistent.
    DiskBudget {
        /// The stage that wanted to write.
        stage: String,
        /// Bytes the write needed.
        needed: u64,
        /// Bytes left in the budget.
        remaining: u64,
    },
    /// The device itself is full (`ENOSPC`): same graceful-exit contract
    /// as [`StoreError::DiskBudget`], but discovered by the OS.
    DiskFull {
        /// The stage that was writing.
        stage: String,
        /// The file being written.
        path: PathBuf,
    },
    /// An artifact name unusable in the temp/rename protocol.
    BadName {
        /// The offending name.
        name: String,
    },
    /// A soft chaos abort fired (test/chaos harness only): the run must
    /// stop *as if killed* — no cleanup, no journal repair.
    ChaosAbort {
        /// The abort-point index that fired.
        point: u64,
        /// The point's label (e.g. "mid_write:convert:trace.0.ivl").
        label: String,
    },
}

impl StoreError {
    pub(crate) fn io(op: &str, path: &Path, source: io::Error) -> StoreError {
        StoreError::Io {
            op: op.to_string(),
            path: path.to_path_buf(),
            source,
        }
    }

    /// Maps an I/O error during a stage write, promoting `ENOSPC` to the
    /// graceful [`StoreError::DiskFull`] contract.
    pub(crate) fn write_failure(stage: &str, path: &Path, source: io::Error) -> StoreError {
        if crate::is_disk_full(&source) {
            StoreError::DiskFull {
                stage: stage.to_string(),
                path: path.to_path_buf(),
            }
        } else {
            StoreError::io("write", path, source)
        }
    }

    /// Whether this error is a resource guardrail (budget or real disk
    /// exhaustion) — the class callers turn into a graceful
    /// partial-results exit rather than a failure.
    pub fn is_resource_exhausted(&self) -> bool {
        matches!(
            self,
            StoreError::DiskBudget { .. } | StoreError::DiskFull { .. }
        )
    }

    /// Whether this error is a soft chaos abort (simulated crash).
    pub fn is_chaos_abort(&self) -> bool {
        matches!(self, StoreError::ChaosAbort { .. })
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "store: {op} {}: {source}", path.display())
            }
            StoreError::HashMismatch {
                stage,
                path,
                expected,
                actual,
            } => write!(
                f,
                "store: stage {stage}: {}: content hash {actual:016x} does not match \
                 journal commit {expected:016x}",
                path.display()
            ),
            StoreError::JournalCorrupt { path, line, what } => {
                write!(f, "store: {} line {line}: {what}", path.display())
            }
            StoreError::DiskBudget {
                stage,
                needed,
                remaining,
            } => write!(
                f,
                "store: stage {stage}: disk budget exhausted ({needed} bytes needed, \
                 {remaining} remaining) — partial results are journaled; re-run \
                 `ute resume` with a larger --disk-budget"
            ),
            StoreError::DiskFull { stage, path } => write!(
                f,
                "store: stage {stage}: {}: no space left on device — partial results \
                 are journaled; free space and run `ute resume`",
                path.display()
            ),
            StoreError::BadName { name } => {
                write!(
                    f,
                    "store: artifact name `{name}` unusable for atomic publish"
                )
            }
            StoreError::ChaosAbort { point, label } => {
                write!(f, "chaos: soft abort at point {point} ({label})")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<StoreError> for UteError {
    fn from(e: StoreError) -> UteError {
        match e {
            // Preserve the io::Error source chain and the path.
            StoreError::Io { path, source, .. } => UteError::Io(source).in_file(&path),
            other => UteError::Invalid(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_stage_and_path() {
        let e = StoreError::HashMismatch {
            stage: "merge".into(),
            path: PathBuf::from("/out/merged.ivl"),
            expected: 1,
            actual: 2,
        };
        let s = e.to_string();
        assert!(s.contains("merge"), "{s}");
        assert!(s.contains("/out/merged.ivl"), "{s}");

        let e = StoreError::DiskBudget {
            stage: "slogmerge".into(),
            needed: 100,
            remaining: 7,
        };
        assert!(e.is_resource_exhausted());
        assert!(e.to_string().contains("resume"), "{e}");
    }

    #[test]
    fn io_converts_with_path_context() {
        let e = StoreError::io(
            "append journal",
            Path::new("/out/journal.utj"),
            io::Error::new(io::ErrorKind::PermissionDenied, "denied"),
        );
        let ue: UteError = e.into();
        let s = ue.to_string();
        assert!(s.contains("/out/journal.utj"), "{s}");
    }

    #[test]
    fn enospc_promotes_to_disk_full() {
        let e = StoreError::write_failure(
            "convert",
            Path::new("/out/trace.0.ivl"),
            io::Error::from_raw_os_error(28),
        );
        assert!(matches!(e, StoreError::DiskFull { .. }), "{e:?}");
        assert!(e.is_resource_exhausted());
    }
}
