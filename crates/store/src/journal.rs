//! The write-ahead run journal (`journal.utj`).
//!
//! One journal per output directory, append-only, fsync'd per record.
//! Each record is one line:
//!
//! ```text
//! <fnv64-hex> <kind> [key=value ...]\n
//! ```
//!
//! The leading checksum covers everything after it, so replay can detect
//! a record torn by a mid-append kill. Values are percent-escaped
//! (space, `%`, control bytes), keeping the format self-describing and
//! greppable. Record kinds, in protocol order per stage:
//!
//! ```text
//! run-start      v=1 config_hash=H <config key=values>
//! stage-start    stage=NAME
//! stage-commit   stage=NAME pid=P artifacts=name:hash:len,...  [removes=a,b]
//! stage-publish  stage=NAME
//! run-end
//! ```
//!
//! The *commit* record is the durability pivot: it is written (and
//! fsync'd) after every artifact temp is durable but before any rename.
//! Replay therefore reconstructs exactly one of three states per stage —
//! not started / committed (temps durable, publication incomplete) /
//! published — and `ute resume` completes or re-runs accordingly. A torn
//! or checksum-failed tail line is *discarded*, not an error: that is
//! the expected crash residue.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::artifact::ArtifactMeta;
use crate::chaos;
use crate::error::StoreError;
use crate::fnv64;

/// The journal's file name inside a run directory.
pub const JOURNAL_NAME: &str = "journal.utj";

/// Journal format version.
pub const VERSION: u32 = 1;

/// Percent-escapes a value so it is one whitespace-free token.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            ' ' => out.push_str("%20"),
            '%' => out.push_str("%25"),
            '\n' => out.push_str("%0a"),
            '\t' => out.push_str("%09"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 3 <= bytes.len() {
            if let Ok(v) = u8::from_str_radix(&s[i + 1..i + 3], 16) {
                out.push(v as char);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// Opens a run: format version, config hash, and the run config as
    /// opaque key=value pairs (enough for `ute resume` to re-derive
    /// every stage).
    RunStart {
        /// Run configuration (workload, iterations, fault spec, ...).
        config: Vec<(String, String)>,
        /// [`fnv64`] of the canonical config serialization.
        config_hash: u64,
    },
    /// A stage began executing.
    StageStart {
        /// Stage name.
        stage: String,
    },
    /// A stage's outputs are durable as temps; publication may begin.
    StageCommit {
        /// Stage name.
        stage: String,
        /// Pid that wrote the temps (names their `.tmp.<pid>` suffix).
        pid: u32,
        /// Every artifact: final name, content hash, length.
        artifacts: Vec<ArtifactMeta>,
        /// Stale files the stage must remove (missing-node suppression).
        removes: Vec<String>,
    },
    /// Every artifact of the stage is renamed into place.
    StagePublish {
        /// Stage name.
        stage: String,
    },
    /// The run completed every stage.
    RunEnd,
}

impl JournalRecord {
    fn kind(&self) -> &'static str {
        match self {
            JournalRecord::RunStart { .. } => "run-start",
            JournalRecord::StageStart { .. } => "stage-start",
            JournalRecord::StageCommit { .. } => "stage-commit",
            JournalRecord::StagePublish { .. } => "stage-publish",
            JournalRecord::RunEnd => "run-end",
        }
    }

    /// Serializes the record body (everything the checksum covers).
    fn body(&self) -> String {
        match self {
            JournalRecord::RunStart {
                config,
                config_hash,
            } => {
                let mut s = format!("run-start v={VERSION} config_hash={config_hash:016x}");
                for (k, v) in config {
                    s.push(' ');
                    s.push_str(&esc(k));
                    s.push('=');
                    s.push_str(&esc(v));
                }
                s
            }
            JournalRecord::StageStart { stage } => format!("stage-start stage={}", esc(stage)),
            JournalRecord::StageCommit {
                stage,
                pid,
                artifacts,
                removes,
            } => {
                let arts: Vec<String> = artifacts
                    .iter()
                    .map(|a| format!("{}:{:016x}:{}", esc(&a.name), a.hash, a.len))
                    .collect();
                let mut s = format!(
                    "stage-commit stage={} pid={pid} artifacts={}",
                    esc(stage),
                    if arts.is_empty() {
                        "-".to_string()
                    } else {
                        arts.join(",")
                    }
                );
                if !removes.is_empty() {
                    let rm: Vec<String> = removes.iter().map(|r| esc(r)).collect();
                    s.push_str(&format!(" removes={}", rm.join(",")));
                }
                s
            }
            JournalRecord::StagePublish { stage } => {
                format!("stage-publish stage={}", esc(stage))
            }
            JournalRecord::RunEnd => "run-end".to_string(),
        }
    }

    /// Parses one record body (checksum already verified and stripped).
    fn parse(body: &str) -> Option<JournalRecord> {
        let mut tokens = body.split(' ');
        let kind = tokens.next()?;
        let mut kv: Vec<(String, String)> = Vec::new();
        for t in tokens {
            let (k, v) = t.split_once('=')?;
            kv.push((unesc(k), v.to_string()));
        }
        let get = |key: &str| -> Option<String> {
            kv.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
        };
        match kind {
            "run-start" => {
                let v: u32 = get("v")?.parse().ok()?;
                if v != VERSION {
                    return None;
                }
                let config_hash = u64::from_str_radix(&get("config_hash")?, 16).ok()?;
                let config = kv
                    .into_iter()
                    .filter(|(k, _)| k != "v" && k != "config_hash")
                    .map(|(k, v)| (k, unesc(&v)))
                    .collect();
                Some(JournalRecord::RunStart {
                    config,
                    config_hash,
                })
            }
            "stage-start" => Some(JournalRecord::StageStart {
                stage: unesc(&get("stage")?),
            }),
            "stage-commit" => {
                let stage = unesc(&get("stage")?);
                let pid: u32 = get("pid")?.parse().ok()?;
                let arts = get("artifacts")?;
                let mut artifacts = Vec::new();
                if arts != "-" {
                    for a in arts.split(',') {
                        let mut parts = a.split(':');
                        let name = unesc(parts.next()?);
                        let hash = u64::from_str_radix(parts.next()?, 16).ok()?;
                        let len: u64 = parts.next()?.parse().ok()?;
                        artifacts.push(ArtifactMeta { name, hash, len });
                    }
                }
                let removes = match get("removes") {
                    None => Vec::new(),
                    Some(rm) => rm.split(',').map(unesc).collect(),
                };
                Some(JournalRecord::StageCommit {
                    stage,
                    pid,
                    artifacts,
                    removes,
                })
            }
            "stage-publish" => Some(JournalRecord::StagePublish {
                stage: unesc(&get("stage")?),
            }),
            "run-end" => Some(JournalRecord::RunEnd),
            _ => None,
        }
    }
}

/// Where a stage stands after replay.
#[derive(Debug, Clone, PartialEq)]
pub enum StageStatus {
    /// Started but never committed: temps (if any) are garbage; re-run.
    Started,
    /// Committed: every temp was durable at commit time. Publication can
    /// be completed from temps/finals, or the stage re-run.
    Committed {
        /// Pid whose `.tmp.<pid>` files hold the committed bytes.
        pid: u32,
        /// Committed artifacts with content hashes.
        artifacts: Vec<ArtifactMeta>,
        /// Files the stage removes on publish.
        removes: Vec<String>,
    },
    /// Published: finals are in place (verify by hash before trusting).
    Published {
        /// Published artifacts with content hashes.
        artifacts: Vec<ArtifactMeta>,
    },
}

/// The reconstructed state of a run directory's journal.
#[derive(Debug, Clone, Default)]
pub struct ReplayState {
    /// The run configuration from `run-start`.
    pub config: Vec<(String, String)>,
    /// The config hash from `run-start`.
    pub config_hash: u64,
    /// Per-stage status, in journal (= pipeline) order.
    pub stages: Vec<(String, StageStatus)>,
    /// Records successfully replayed.
    pub records: usize,
    /// Whether a torn/corrupt tail was discarded.
    pub torn_tail: bool,
    /// Whether a `run-end` record was seen.
    pub run_ended: bool,
}

impl ReplayState {
    /// This stage's status, if the journal mentions it.
    pub fn status(&self, stage: &str) -> Option<&StageStatus> {
        self.stages
            .iter()
            .find(|(s, _)| s == stage)
            .map(|(_, st)| st)
    }

    fn apply(&mut self, rec: JournalRecord) {
        match rec {
            JournalRecord::RunStart {
                config,
                config_hash,
            } => {
                self.config = config;
                self.config_hash = config_hash;
            }
            JournalRecord::StageStart { stage } => self.set(stage, StageStatus::Started),
            JournalRecord::StageCommit {
                stage,
                pid,
                artifacts,
                removes,
            } => self.set(
                stage,
                StageStatus::Committed {
                    pid,
                    artifacts,
                    removes,
                },
            ),
            JournalRecord::StagePublish { stage } => {
                // Promote commit → publish, keeping the artifact list.
                if let Some(StageStatus::Committed { artifacts, .. }) = self.status(&stage) {
                    let artifacts = artifacts.clone();
                    self.set(stage, StageStatus::Published { artifacts });
                } else {
                    self.set(
                        stage,
                        StageStatus::Published {
                            artifacts: Vec::new(),
                        },
                    );
                }
            }
            JournalRecord::RunEnd => self.run_ended = true,
        }
    }

    fn set(&mut self, stage: String, status: StageStatus) {
        match self.stages.iter_mut().find(|(s, _)| *s == stage) {
            Some((_, st)) => *st = status,
            None => self.stages.push((stage, status)),
        }
    }
}

/// An open, appendable run journal.
#[derive(Debug)]
pub struct RunJournal {
    path: PathBuf,
    file: File,
}

impl RunJournal {
    /// The journal path inside a run directory.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(JOURNAL_NAME)
    }

    /// Starts a fresh journal (truncating any previous run's) and writes
    /// the durable `run-start` record.
    pub fn create(dir: &Path, config: &[(String, String)]) -> Result<RunJournal, StoreError> {
        let path = Self::path_in(dir);
        let file = File::create(&path).map_err(|e| StoreError::io("create journal", &path, e))?;
        let mut j = RunJournal { path, file };
        j.append(&JournalRecord::RunStart {
            config: config.to_vec(),
            config_hash: config_hash(config),
        })?;
        Ok(j)
    }

    /// Replays an existing journal and reopens it for appending — the
    /// `ute resume` entry point. Fails with [`StoreError::JournalCorrupt`]
    /// if the journal is missing or its `run-start` is unreadable (a torn
    /// *tail* is fine and reported via [`ReplayState::torn_tail`]).
    pub fn open_for_resume(dir: &Path) -> Result<(RunJournal, ReplayState), StoreError> {
        let path = Self::path_in(dir);
        let data = std::fs::read(&path).map_err(|e| StoreError::io("read journal", &path, e))?;
        let state = replay(&path, &data)?;
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| StoreError::io("open journal", &path, e))?;
        Ok((RunJournal { path, file }, state))
    }

    /// Appends one record and fsyncs it — the record is durable (or an
    /// error is returned) before this returns. Crosses a chaos point
    /// *after* durability, so an armed kill lands exactly between "record
    /// on disk" and "next protocol step".
    pub fn append(&mut self, rec: &JournalRecord) -> Result<(), StoreError> {
        let body = rec.body();
        let line = format!("{:016x} {body}\n", fnv64(body.as_bytes()));
        let write = |f: &mut File| -> std::io::Result<()> {
            f.write_all(line.as_bytes())?;
            f.sync_data()
        };
        write(&mut self.file).map_err(|e| {
            if crate::is_disk_full(&e) {
                StoreError::DiskFull {
                    stage: "journal".to_string(),
                    path: self.path.clone(),
                }
            } else {
                StoreError::io("append journal", &self.path, e)
            }
        })?;
        ute_obs::counter("store/journal_records").inc();
        let kind = rec.kind();
        chaos::point(|| format!("journal:{kind}"))?;
        Ok(())
    }
}

/// The canonical config hash: order-sensitive over the serialized pairs.
pub fn config_hash(config: &[(String, String)]) -> u64 {
    let mut s = String::new();
    for (k, v) in config {
        s.push_str(&esc(k));
        s.push('=');
        s.push_str(&esc(v));
        s.push('\n');
    }
    fnv64(s.as_bytes())
}

/// Replays journal bytes into a [`ReplayState`]. Torn or checksum-failed
/// content *terminates* replay (everything from the bad line on is
/// ignored) — that is the legitimate residue of a mid-append kill. Only
/// an unusable first record is an error.
fn replay(path: &Path, data: &[u8]) -> Result<ReplayState, StoreError> {
    let text = String::from_utf8_lossy(data);
    let mut state = ReplayState::default();
    let mut saw_start = false;
    for (i, line) in text.split_inclusive('\n').enumerate() {
        let parsed = (|| {
            let line = line.strip_suffix('\n')?; // no newline: torn tail
            let (crc, body) = line.split_once(' ')?;
            let crc = u64::from_str_radix(crc, 16).ok()?;
            if crc != fnv64(body.as_bytes()) {
                return None;
            }
            JournalRecord::parse(body)
        })();
        match parsed {
            Some(rec) => {
                if !saw_start {
                    if !matches!(rec, JournalRecord::RunStart { .. }) {
                        return Err(StoreError::JournalCorrupt {
                            path: path.to_path_buf(),
                            line: i + 1,
                            what: "first record is not run-start".to_string(),
                        });
                    }
                    saw_start = true;
                }
                state.apply(rec);
                state.records += 1;
            }
            None => {
                if !saw_start {
                    return Err(StoreError::JournalCorrupt {
                        path: path.to_path_buf(),
                        line: i + 1,
                        what: "unreadable run-start record".to_string(),
                    });
                }
                state.torn_tail = true;
                break;
            }
        }
    }
    if !saw_start {
        return Err(StoreError::JournalCorrupt {
            path: path.to_path_buf(),
            line: 1,
            what: "empty journal".to_string(),
        });
    }
    ute_obs::counter("store/journal_replayed").add(state.records as u64);
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ute_journal_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn cfg() -> Vec<(String, String)> {
        vec![
            ("workload".to_string(), "ping pong".to_string()),
            ("iterations".to_string(), "256".to_string()),
        ]
    }

    #[test]
    fn round_trip_through_create_and_resume() {
        let dir = tmpdir("rt");
        let mut j = RunJournal::create(&dir, &cfg()).unwrap();
        j.append(&JournalRecord::StageStart {
            stage: "trace".into(),
        })
        .unwrap();
        let arts = vec![
            ArtifactMeta {
                name: "trace.0.raw".into(),
                hash: 0xdead,
                len: 42,
            },
            ArtifactMeta {
                name: "threads.utt".into(),
                hash: 0xbeef,
                len: 7,
            },
        ];
        j.append(&JournalRecord::StageCommit {
            stage: "trace".into(),
            pid: 123,
            artifacts: arts.clone(),
            removes: vec!["trace.2.raw".into()],
        })
        .unwrap();
        j.append(&JournalRecord::StagePublish {
            stage: "trace".into(),
        })
        .unwrap();
        j.append(&JournalRecord::StageStart {
            stage: "convert".into(),
        })
        .unwrap();
        drop(j);

        let (_j, state) = RunJournal::open_for_resume(&dir).unwrap();
        assert_eq!(state.config, cfg()); // escaping survived the space
        assert_eq!(state.config_hash, config_hash(&cfg()));
        assert!(!state.torn_tail);
        assert!(!state.run_ended);
        assert_eq!(state.records, 5);
        match state.status("trace").unwrap() {
            StageStatus::Published { artifacts } => assert_eq!(artifacts, &arts),
            other => panic!("trace should be published, got {other:?}"),
        }
        assert_eq!(state.status("convert"), Some(&StageStatus::Started));
        assert_eq!(state.status("merge"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let dir = tmpdir("torn");
        let mut j = RunJournal::create(&dir, &cfg()).unwrap();
        j.append(&JournalRecord::StageStart {
            stage: "trace".into(),
        })
        .unwrap();
        drop(j);
        let path = RunJournal::path_in(&dir);
        // Simulate a mid-append kill: append half a record, no newline.
        let mut data = std::fs::read(&path).unwrap();
        data.extend_from_slice(b"0123456789abcdef stage-comm");
        std::fs::write(&path, &data).unwrap();
        let (_j, state) = RunJournal::open_for_resume(&dir).unwrap();
        assert!(state.torn_tail);
        assert_eq!(state.records, 2);
        assert_eq!(state.status("trace"), Some(&StageStatus::Started));
        // A bit flip in a later line truncates replay at that line.
        let mut data = std::fs::read(&path).unwrap();
        let second = data.iter().position(|&b| b == b'\n').unwrap() + 1;
        data[second + 20] ^= 0x40;
        std::fs::write(&path, &data).unwrap();
        let (_j, state) = RunJournal::open_for_resume(&dir).unwrap();
        assert!(state.torn_tail);
        assert_eq!(state.records, 1);
        assert_eq!(state.status("trace"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unusable_journal_is_a_typed_error() {
        let dir = tmpdir("bad");
        assert!(matches!(
            RunJournal::open_for_resume(&dir),
            Err(StoreError::Io { .. })
        ));
        let path = RunJournal::path_in(&dir);
        std::fs::write(&path, b"garbage with no structure\n").unwrap();
        let e = RunJournal::open_for_resume(&dir).unwrap_err();
        assert!(matches!(e, StoreError::JournalCorrupt { .. }), "{e}");
        assert!(e.to_string().contains("journal.utj"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
