//! RAII wall-clock span timers and the capture buffer behind the
//! self-trace sink.
//!
//! A [`Span`] measures one stage of the pipeline or one unit of work
//! inside a stage (one node file converted, one clock fitted, one
//! frame flushed). Dropping the span records its duration into the
//! histogram `"<stage>/span_ns"` — always — and, when capture is
//! enabled, appends a [`FinishedSpan`] to a process-global log that
//! `ute-cli`'s self-trace sink turns into UTE interval records.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::metrics;

/// The process epoch all span timestamps are relative to (first use).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process epoch.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

static CAPTURE: AtomicBool = AtomicBool::new(false);

fn span_log() -> &'static Mutex<Vec<FinishedSpan>> {
    static LOG: OnceLock<Mutex<Vec<FinishedSpan>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

/// Turns span capture on or off. Capture allocates per span, so it is
/// off unless a self-trace sink asked for it (`--self-trace`).
pub fn set_capture(on: bool) {
    // Pin the epoch before the first captured span so start offsets
    // are meaningful.
    epoch();
    CAPTURE.store(on, Ordering::Relaxed);
}

/// Whether spans are currently being captured.
pub fn capture_enabled() -> bool {
    CAPTURE.load(Ordering::Relaxed)
}

/// Takes every captured span out of the log.
pub fn drain_spans() -> Vec<FinishedSpan> {
    std::mem::take(&mut *span_log().lock())
}

/// A completed span, as captured for the self-trace sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedSpan {
    /// Pipeline stage ("trace", "convert", "merge", ...). Becomes the
    /// self-trace timeline the interval lands on.
    pub stage: &'static str,
    /// What this span covered ("convert" for the whole stage,
    /// "convert node 3" for one unit of work). Becomes the marker name.
    pub label: String,
    /// Start, in nanoseconds since the process epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// RAII wall-clock timer for one stage or unit of work.
#[must_use = "a span measures the scope it is alive in"]
pub struct Span {
    stage: &'static str,
    /// `None` when the label equals the stage name (saves the
    /// allocation on the common whole-stage spans).
    label: Option<String>,
    start_ns: u64,
    start: Instant,
}

impl Span {
    /// Opens a span for a unit of work within a stage.
    pub fn enter(stage: &'static str, label: impl Into<String>) -> Span {
        Span {
            stage,
            label: Some(label.into()),
            start_ns: now_ns(),
            start: Instant::now(),
        }
    }

    /// Opens a whole-stage span (label = stage name).
    pub fn stage(stage: &'static str) -> Span {
        Span {
            stage,
            label: None,
            start_ns: now_ns(),
            start: Instant::now(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        metrics::histogram(&format!("{}/span_ns", self.stage)).record(dur_ns);
        if capture_enabled() {
            span_log().lock().push(FinishedSpan {
                stage: self.stage,
                label: self.label.take().unwrap_or_else(|| self.stage.to_string()),
                start_ns: self.start_ns,
                dur_ns,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_histogram_and_capture() {
        set_capture(true);
        {
            let _a = Span::stage("test-span-stage");
            let _b = Span::enter("test-span-stage", "unit 1");
        }
        set_capture(false);
        let spans: Vec<_> = drain_spans()
            .into_iter()
            .filter(|s| s.stage == "test-span-stage")
            .collect();
        assert_eq!(spans.len(), 2);
        // Inner span ends first.
        assert_eq!(spans[0].label, "unit 1");
        assert_eq!(spans[1].label, "test-span-stage");
        assert!(metrics::histogram("test-span-stage/span_ns").count() >= 2);
    }

    #[test]
    fn capture_off_discards() {
        set_capture(false);
        drain_spans();
        {
            let _s = Span::stage("test-span-nocapture");
        }
        assert!(drain_spans()
            .iter()
            .all(|s| s.stage != "test-span-nocapture"));
    }
}
