//! RAII wall-clock span timers, the causal span hierarchy, and the
//! bounded capture buffer behind the self-trace sinks.
//!
//! A [`Span`] measures one stage of the pipeline or one unit of work
//! inside a stage (one node file converted, one clock fitted, one
//! frame flushed). Spans are **hierarchical**: every span has a stable
//! process-unique id, a parent id (the innermost span open on the same
//! thread when it was entered, or an explicit parent handed across a
//! thread boundary with [`Span::enter_under`]), and the dense index of
//! the thread it ran on. Cross-thread handoffs that are *data* flows
//! rather than call nesting — a convert worker feeding the merge
//! consumer through a bounded channel — are recorded as paired
//! [`FlowPoint`]s sharing a link id (see [`new_link`], [`flow_begin`],
//! [`flow_end`]), which the Chrome-trace exporter turns into flow
//! arrows.
//!
//! Dropping a span records its duration into the histogram
//! `"<stage>/span_ns"` — always — and, when capture is enabled, appends
//! a [`FinishedSpan`] to a process-global log that `ute-cli`'s
//! self-trace sink serializes. The log is bounded
//! ([`set_capture_limit`]): once full, further spans are dropped and
//! counted in `obs/spans_dropped` instead of growing without bound on
//! huge runs. A span closed while its thread is panicking (a pipeline
//! worker caught by `catch_unwind`) is still recorded, marked
//! [`FinishedSpan::aborted`] — self-trace output therefore never
//! contains a dangling open interval, even across worker crashes.

use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::metrics;

/// The process epoch all span timestamps are relative to (first use).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process epoch.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

static CAPTURE: AtomicBool = AtomicBool::new(false);

/// Default capture-log bound: generous for any real run (a span is
/// ~100 bytes, so the cap is ~100 MB), small enough to keep a runaway
/// per-record span from exhausting memory.
pub const DEFAULT_CAPTURE_LIMIT: usize = 1 << 20;

static CAPTURE_LIMIT: AtomicUsize = AtomicUsize::new(DEFAULT_CAPTURE_LIMIT);

/// Process-unique span ids, from 1 (0 means "no span").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Process-unique flow link ids, from 1 (0 means "no link").
static NEXT_LINK_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Ids of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's dense observability index (assigned on first span).
    static THREAD_IDX: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// The dense index of the calling thread, assigned on first use in
/// order of first span activity (the main thread is almost always 0).
pub fn thread_index() -> u64 {
    THREAD_IDX.with(|t| {
        if t.get() == u64::MAX {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            t.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// The id of the innermost span open on the calling thread, or 0.
/// Capture this on a spawning thread and hand it to workers via
/// [`Span::enter_under`] so their spans nest under the pipeline span
/// instead of floating as roots.
pub fn current_span() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

fn span_log() -> &'static Mutex<Vec<FinishedSpan>> {
    static LOG: OnceLock<Mutex<Vec<FinishedSpan>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

fn flow_log() -> &'static Mutex<Vec<FlowPoint>> {
    static LOG: OnceLock<Mutex<Vec<FlowPoint>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

/// Turns span capture on or off. Capture allocates per span, so it is
/// off unless a self-trace sink asked for it (`--self-trace`).
pub fn set_capture(on: bool) {
    // Pin the epoch before the first captured span so start offsets
    // are meaningful.
    epoch();
    CAPTURE.store(on, Ordering::Relaxed);
}

/// Whether spans are currently being captured.
pub fn capture_enabled() -> bool {
    CAPTURE.load(Ordering::Relaxed)
}

/// Caps the capture log at `limit` spans (and the flow log at the same
/// bound). Once full, further spans are dropped and counted in
/// `obs/spans_dropped` (`obs/flows_dropped` for flow points).
pub fn set_capture_limit(limit: usize) {
    CAPTURE_LIMIT.store(limit.max(1), Ordering::Relaxed);
}

fn capture_limit() -> usize {
    CAPTURE_LIMIT.load(Ordering::Relaxed)
}

/// Takes every captured span out of the log.
pub fn drain_spans() -> Vec<FinishedSpan> {
    std::mem::take(&mut *span_log().lock())
}

/// Takes every captured flow point out of the log.
pub fn drain_flows() -> Vec<FlowPoint> {
    std::mem::take(&mut *flow_log().lock())
}

/// Allocates a fresh cross-thread link id (see [`flow_begin`]).
pub fn new_link() -> u64 {
    NEXT_LINK_ID.fetch_add(1, Ordering::Relaxed)
}

/// Records the producing end of a cross-thread handoff (worker side of
/// a channel send). No-op unless capture is enabled or `link` is 0.
pub fn flow_begin(link: u64) {
    record_flow(link, true);
}

/// Records the consuming end of a cross-thread handoff (merge side of
/// a channel receive). No-op unless capture is enabled or `link` is 0.
pub fn flow_end(link: u64) {
    record_flow(link, false);
}

fn record_flow(link: u64, begin: bool) {
    if link == 0 || !capture_enabled() {
        return;
    }
    let point = FlowPoint {
        link,
        at_ns: now_ns(),
        tid: thread_index(),
        begin,
    };
    let mut log = flow_log().lock();
    if log.len() >= capture_limit() {
        drop(log);
        metrics::counter("obs/flows_dropped").inc();
    } else {
        log.push(point);
    }
}

/// A completed span, as captured for the self-trace sinks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedSpan {
    /// Pipeline stage ("trace", "convert", "merge", ...). Becomes the
    /// self-trace timeline the interval lands on (the Chrome-trace
    /// category).
    pub stage: &'static str,
    /// What this span covered ("convert" for the whole stage,
    /// "convert node 3" for one unit of work). Becomes the marker name.
    pub label: String,
    /// Start, in nanoseconds since the process epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Stable process-unique span id (from 1).
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root.
    pub parent: u64,
    /// Dense index of the thread the span ran on.
    pub tid: u64,
    /// CPU time the owning thread consumed while the span was open
    /// (`CLOCK_THREAD_CPUTIME_ID` delta), or 0 when profiling was off
    /// or the platform clock is unavailable. Compare against `dur_ns`
    /// for the wall-vs-CPU utilization ratio: a low ratio means the
    /// span spent its life blocked, not computing.
    pub cpu_ns: u64,
    /// True when the span was closed by a panic unwinding through it
    /// (a pipeline worker caught by `catch_unwind`): the recorded
    /// duration covers work up to the abort, not a clean completion.
    pub aborted: bool,
}

/// One end of a cross-thread handoff; paired by `link`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowPoint {
    /// Link id shared by the begin/end pair (see [`new_link`]).
    pub link: u64,
    /// When the handoff end was recorded, ns since the process epoch.
    pub at_ns: u64,
    /// Dense index of the thread it was recorded on.
    pub tid: u64,
    /// True for the producing end, false for the consuming end.
    pub begin: bool,
}

/// RAII wall-clock timer for one stage or unit of work.
#[must_use = "a span measures the scope it is alive in"]
pub struct Span {
    stage: &'static str,
    /// `None` when the label equals the stage name (saves the
    /// allocation on the common whole-stage spans).
    label: Option<String>,
    start_ns: u64,
    start: Instant,
    id: u64,
    parent: u64,
    /// True when this span was mirrored into the profiling registry at
    /// open (profiling may toggle mid-span; the close side must match
    /// what open actually did).
    profiled: bool,
    /// Thread CPU clock at open (profiled spans only).
    cpu_start: u64,
    /// Stage slot to restore on close (profiled spans only).
    prev_slot: usize,
}

impl Span {
    fn open(stage: &'static str, label: Option<String>, parent: u64) -> Span {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        let profiled = crate::prof::profiling_enabled();
        let (cpu_start, prev_slot) = if profiled {
            let prev = crate::prof::frame_open(id, stage, label.as_deref());
            (crate::prof::thread_cpu_ns(), prev)
        } else {
            (0, 0)
        };
        Span {
            stage,
            label,
            start_ns: now_ns(),
            start: Instant::now(),
            id,
            parent,
            profiled,
            cpu_start,
            prev_slot,
        }
    }

    /// Opens a span for a unit of work within a stage. Its parent is
    /// the innermost span open on the calling thread.
    pub fn enter(stage: &'static str, label: impl Into<String>) -> Span {
        Span::open(stage, Some(label.into()), current_span())
    }

    /// Opens a whole-stage span (label = stage name), parented like
    /// [`Span::enter`].
    pub fn stage(stage: &'static str) -> Span {
        Span::open(stage, None, current_span())
    }

    /// Opens a span under an explicit parent id — the cross-thread
    /// form: a spawning thread captures [`current_span`] and hands it
    /// to its workers so their spans nest under the pipeline span.
    pub fn enter_under(stage: &'static str, label: impl Into<String>, parent: u64) -> Span {
        Span::open(stage, Some(label.into()), parent)
    }

    /// This span's stable id (pass to [`Span::enter_under`] on another
    /// thread to nest work under it).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        // Pop this span from the thread stack. Spans are scoped, so it
        // is almost always on top; searching from the top keeps the
        // stack consistent even under unusual drop orders.
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        metrics::histogram(&format!("{}/span_ns", self.stage)).record(dur_ns);
        let mut cpu_ns = 0;
        if self.profiled {
            cpu_ns = crate::prof::thread_cpu_ns().saturating_sub(self.cpu_start);
            crate::prof::frame_close(self.id, self.prev_slot);
            metrics::histogram(&format!("{}/cpu_ns", self.stage)).record(cpu_ns);
            metrics::counter("profile/cpu_spans").inc();
        }
        if capture_enabled() {
            let finished = FinishedSpan {
                stage: self.stage,
                label: self.label.take().unwrap_or_else(|| self.stage.to_string()),
                start_ns: self.start_ns,
                dur_ns,
                id: self.id,
                parent: self.parent,
                tid: thread_index(),
                cpu_ns,
                aborted: std::thread::panicking(),
            };
            let mut log = span_log().lock();
            if log.len() >= capture_limit() {
                drop(log);
                metrics::counter("obs/spans_dropped").inc();
            } else {
                log.push(finished);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_histogram_and_capture() {
        set_capture(true);
        {
            let _a = Span::stage("test-span-stage");
            let _b = Span::enter("test-span-stage", "unit 1");
        }
        set_capture(false);
        let spans: Vec<_> = drain_spans()
            .into_iter()
            .filter(|s| s.stage == "test-span-stage")
            .collect();
        assert_eq!(spans.len(), 2);
        // Inner span ends first.
        assert_eq!(spans[0].label, "unit 1");
        assert_eq!(spans[1].label, "test-span-stage");
        assert!(metrics::histogram("test-span-stage/span_ns").count() >= 2);
        // And the hierarchy is recorded: the unit nests under the stage.
        assert_eq!(spans[0].parent, spans[1].id);
        assert_eq!(spans[0].tid, spans[1].tid);
        assert!(!spans[0].aborted && !spans[1].aborted);
    }

    #[test]
    fn capture_off_discards() {
        set_capture(false);
        drain_spans();
        {
            let _s = Span::stage("test-span-nocapture");
        }
        assert!(drain_spans()
            .iter()
            .all(|s| s.stage != "test-span-nocapture"));
    }

    #[test]
    fn cross_thread_parent_and_distinct_tids() {
        set_capture(true);
        let (outer_id, outer_tid) = {
            let outer = Span::enter("test-span-xthread", "pipeline");
            let id = outer.id();
            let tid = thread_index();
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _w = Span::enter_under("test-span-xthread", "worker", id);
                })
                .join()
                .unwrap();
            });
            (id, tid)
        };
        set_capture(false);
        let spans: Vec<_> = drain_spans()
            .into_iter()
            .filter(|s| s.stage == "test-span-xthread")
            .collect();
        assert_eq!(spans.len(), 2);
        let worker = spans.iter().find(|s| s.label == "worker").unwrap();
        assert_eq!(worker.parent, outer_id);
        assert_ne!(worker.tid, outer_tid, "worker thread got its own index");
    }

    #[test]
    fn capture_log_is_bounded_and_counts_drops() {
        // The limit and the log are process-global; run the whole check
        // under a fresh drain so concurrent span tests only ever add
        // spans (which this test tolerates by counting its own stage).
        set_capture(true);
        drain_spans();
        set_capture_limit(8);
        let dropped_before = metrics::counter("obs/spans_dropped").get();
        for i in 0..32 {
            let _s = Span::enter("test-span-bounded", format!("unit {i}"));
        }
        set_capture_limit(DEFAULT_CAPTURE_LIMIT);
        set_capture(false);
        let kept = drain_spans();
        assert!(kept.len() <= 8, "log grew past the cap: {}", kept.len());
        assert!(
            metrics::counter("obs/spans_dropped").get() >= dropped_before + 24,
            "drops were not counted"
        );
    }

    #[test]
    fn flow_points_pair_by_link() {
        set_capture(true);
        drain_flows();
        let link = new_link();
        flow_begin(link);
        std::thread::scope(|s| {
            s.spawn(|| flow_end(link)).join().unwrap();
        });
        set_capture(false);
        let flows: Vec<_> = drain_flows()
            .into_iter()
            .filter(|f| f.link == link)
            .collect();
        assert_eq!(flows.len(), 2);
        let begin = flows.iter().find(|f| f.begin).unwrap();
        let end = flows.iter().find(|f| !f.begin).unwrap();
        assert!(begin.at_ns <= end.at_ns);
        assert_ne!(begin.tid, end.tid);
        // Link 0 and capture-off points are never recorded.
        flow_begin(0);
        assert!(drain_flows().is_empty());
    }

    #[test]
    fn panicking_spans_are_marked_aborted() {
        set_capture(true);
        let caught = std::panic::catch_unwind(|| {
            let _s = Span::enter("test-span-abort", "doomed");
            panic!("injected");
        });
        set_capture(false);
        assert!(caught.is_err());
        let spans: Vec<_> = drain_spans()
            .into_iter()
            .filter(|s| s.stage == "test-span-abort")
            .collect();
        assert_eq!(spans.len(), 1, "panicking span must still be recorded");
        assert!(spans[0].aborted);
        // The thread stack healed: new spans are not parented under the
        // aborted one.
        assert_eq!(current_span(), 0);
    }
}
