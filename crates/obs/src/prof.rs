//! Profiling hooks under the span machinery: the cross-thread live-span
//! registry the wall-clock stack sampler reads, per-thread CPU time via
//! `CLOCK_THREAD_CPUTIME_ID`, and the stage-slot thread-local the
//! counting allocator attributes to.
//!
//! Everything here is strictly observational and gated on one global
//! flag ([`set_profiling`]). With profiling off, the only cost added to
//! the span path is a single relaxed atomic load at open — the same
//! cost class as the disarmed fault-injection hooks in `ute-pipeline`.
//! With profiling on, each span open mirrors a [`LiveFrame`] into a
//! per-thread stack that other threads can read: the `ute-profile`
//! sampler walks [`sample_stacks`] on its own thread without ever
//! stopping the workers. Threads deregister themselves by dropping
//! their stack's `Arc` on exit; the registry holds only `Weak`
//! references and prunes dead threads on the next sample.
//!
//! The registry self-heals under panics for the same reason the span
//! stack does: a worker unwinding through `catch_unwind` still runs
//! every `Span::drop` on its way out, and each drop removes its frame
//! by span id (searched from the top, so unusual drop orders cannot
//! strand a frame).

use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, Weak};

static PROFILING: AtomicBool = AtomicBool::new(false);

/// Turns the profiling hooks on or off. On: span opens mirror frames
/// into the live-stack registry, opens/closes read the thread CPU
/// clock, and the active stage slot tracks the innermost span.
pub fn set_profiling(on: bool) {
    // Pin the epoch before the first profiled span so sampler
    // timestamps and span starts share an origin.
    let _ = crate::span::now_ns();
    PROFILING.store(on, Ordering::Relaxed);
}

/// Whether the profiling hooks are currently on.
#[inline]
pub fn profiling_enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// One frame of a thread's live span stack, as seen by the sampler.
#[derive(Debug, Clone)]
pub struct LiveFrame {
    /// Span id of the frame (matches `FinishedSpan::id` once closed).
    pub id: u64,
    /// The span's stage ("convert", "merge", ...): the attribution
    /// unit of the bottleneck report.
    pub stage: &'static str,
    /// The span's label, `None` when it equals the stage name.
    pub label: Option<Box<str>>,
}

impl LiveFrame {
    /// The frame's display name in folded stacks: the label when
    /// present, else the stage.
    pub fn name(&self) -> &str {
        self.label.as_deref().unwrap_or(self.stage)
    }
}

/// One thread's mirror of its open profiled spans, outermost first.
struct LiveStack {
    tid: u64,
    frames: Mutex<Vec<LiveFrame>>,
}

fn registry() -> &'static Mutex<Vec<Weak<LiveStack>>> {
    static REG: OnceLock<Mutex<Vec<Weak<LiveStack>>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// This thread's registered live stack, created on first profiled
    /// span. Dropped on thread exit, which is what deregisters the
    /// thread (the registry's `Weak` stops upgrading).
    static LIVE: RefCell<Option<Arc<LiveStack>>> = const { RefCell::new(None) };
    /// Stage slot of the innermost profiled span (0 = none). Const-init
    /// and drop-free so the counting allocator can read it from inside
    /// `GlobalAlloc` without touching the TLS destructor machinery.
    static STAGE_SLOT: Cell<usize> = const { Cell::new(0) };
}

/// Mirrors an opening span into the calling thread's live stack and
/// makes its stage the active allocation slot. Returns the previous
/// slot for the span to restore on close.
pub(crate) fn frame_open(id: u64, stage: &'static str, label: Option<&str>) -> usize {
    let stack = LIVE.with(|l| {
        let mut l = l.borrow_mut();
        match l.as_ref() {
            Some(s) => Arc::clone(s),
            None => {
                let s = Arc::new(LiveStack {
                    tid: crate::span::thread_index(),
                    frames: Mutex::new(Vec::new()),
                });
                registry().lock().push(Arc::downgrade(&s));
                *l = Some(Arc::clone(&s));
                s
            }
        }
    });
    stack.frames.lock().push(LiveFrame {
        id,
        stage,
        label: label.map(Box::from),
    });
    let prev = STAGE_SLOT.with(|c| c.get());
    STAGE_SLOT.with(|c| c.set(stage_slot(stage)));
    prev
}

/// Removes the frame for span `id` from the calling thread's live stack
/// and restores the pre-span allocation slot. Removal searches from the
/// top, so it heals under panics and unusual drop orders; ids that were
/// never mirrored (profiling toggled mid-span) are a no-op.
pub(crate) fn frame_close(id: u64, prev_slot: usize) {
    LIVE.with(|l| {
        if let Some(s) = l.borrow().as_ref() {
            let mut frames = s.frames.lock();
            if let Some(pos) = frames.iter().rposition(|f| f.id == id) {
                frames.remove(pos);
            }
        }
    });
    STAGE_SLOT.with(|c| c.set(prev_slot));
}

/// Visits every live thread stack — dense thread index plus frames,
/// outermost first — pruning threads that have exited. Each stack is
/// locked only for the duration of its visit; keep `f` cheap, it runs
/// with a span-open path blocked.
pub fn sample_stacks(mut f: impl FnMut(u64, &[LiveFrame])) {
    let mut reg = registry().lock();
    reg.retain(|w| match w.upgrade() {
        Some(s) => {
            let frames = s.frames.lock();
            f(s.tid, &frames);
            true
        }
        None => false,
    });
}

// ---------------------------------------------------------------------
// Stage slots — the allocator-visible view of "what stage am I in".
// ---------------------------------------------------------------------

/// Capacity of the stage-slot table the counting allocator indexes.
/// Slot 0 means "no profiled span active" (unattributed); stages past
/// the capacity also fall into slot 0 rather than failing.
pub const MAX_STAGE_SLOTS: usize = 64;

fn slot_names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Dense 1-based slot for a stage name, registering it on first use;
/// 0 once the table is full.
fn stage_slot(stage: &'static str) -> usize {
    let mut names = slot_names().lock();
    if let Some(i) = names.iter().position(|&n| n == stage) {
        return i + 1;
    }
    if names.len() + 1 >= MAX_STAGE_SLOTS {
        return 0;
    }
    names.push(stage);
    names.len()
}

/// The stage slot of the profiled span active on the calling thread
/// (0 = none). Allocation-free and lock-free: safe to call from inside
/// a global allocator.
#[inline]
pub fn current_stage_slot() -> usize {
    STAGE_SLOT.with(|c| c.get())
}

/// The stage name registered in `slot`, if any (slot 0 is never named).
pub fn stage_slot_name(slot: usize) -> Option<&'static str> {
    if slot == 0 {
        return None;
    }
    slot_names().lock().get(slot - 1).copied()
}

/// The slot already registered for `stage`, without registering it.
pub fn stage_slot_of(stage: &str) -> Option<usize> {
    slot_names()
        .lock()
        .iter()
        .position(|&n| n == stage)
        .map(|i| i + 1)
}

// ---------------------------------------------------------------------
// Per-thread CPU time.
// ---------------------------------------------------------------------

/// Nanoseconds of CPU time consumed by the calling thread, from
/// `clock_gettime(CLOCK_THREAD_CPUTIME_ID)`. Returns 0 where the clock
/// is unavailable (see [`cpu_clock_supported`]), so utilization ratios
/// degrade to 0 rather than lying.
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
pub fn thread_cpu_ns() -> u64 {
    // Called directly rather than through the `libc` crate (not
    // vendored); std already links the symbol on Linux.
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clk_id: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: `ts` is a valid writable timespec matching the 64-bit
    // Linux ABI layout.
    if unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) } != 0 {
        return 0;
    }
    (ts.tv_sec as u64).saturating_mul(1_000_000_000) + ts.tv_nsec as u64
}

/// Fallback for platforms without a known thread CPU clock ABI.
#[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
pub fn thread_cpu_ns() -> u64 {
    0
}

/// Whether [`thread_cpu_ns`] reads a real clock on this platform.
pub fn cpu_clock_supported() -> bool {
    cfg!(all(target_os = "linux", target_pointer_width = "64"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    /// Profiling is process-global; serialize the tests that toggle it.
    fn toggle_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    #[test]
    fn live_stacks_mirror_open_spans_and_heal_on_close() {
        let _guard = toggle_lock().lock();
        set_profiling(true);
        let tid = std::thread::scope(|s| {
            s.spawn(|| {
                let outer = Span::enter("test-prof-stage", "outer");
                let _inner = Span::enter_under("test-prof-stage", "inner unit", outer.id());
                let tid = crate::span::thread_index();
                let mut seen = Vec::new();
                sample_stacks(|t, frames| {
                    if t == tid {
                        seen = frames.iter().map(|f| f.name().to_string()).collect();
                    }
                });
                assert_eq!(seen, ["outer", "inner unit"]);
                tid
            })
            .join()
            .unwrap()
        });
        // The worker thread exited: its stack is pruned on this sample.
        let mut resurfaced = false;
        sample_stacks(|t, _| resurfaced |= t == tid);
        assert!(!resurfaced, "dead thread's stack was not pruned");
        set_profiling(false);
    }

    #[test]
    fn aborted_spans_leave_the_registry() {
        let _guard = toggle_lock().lock();
        set_profiling(true);
        let tid = crate::span::thread_index();
        let caught = std::panic::catch_unwind(|| {
            let _s = Span::enter("test-prof-abort", "doomed");
            panic!("injected");
        });
        assert!(caught.is_err());
        let mut frames_left = 0;
        sample_stacks(|t, frames| {
            if t == tid {
                frames_left = frames
                    .iter()
                    .filter(|f| f.stage == "test-prof-abort")
                    .count();
            }
        });
        set_profiling(false);
        assert_eq!(frames_left, 0, "panicked span left a live frame behind");
    }

    #[test]
    fn stage_slots_nest_and_restore() {
        let _guard = toggle_lock().lock();
        set_profiling(true);
        std::thread::scope(|s| {
            s.spawn(|| {
                assert_eq!(current_stage_slot(), 0);
                {
                    let _a = Span::stage("test-prof-slot-a");
                    let a = current_stage_slot();
                    assert_eq!(stage_slot_name(a), Some("test-prof-slot-a"));
                    let b = {
                        let _b = Span::stage("test-prof-slot-b");
                        let b = current_stage_slot();
                        assert_ne!(a, b);
                        assert_eq!(stage_slot_name(b), Some("test-prof-slot-b"));
                        b
                    };
                    assert_eq!(current_stage_slot(), a);
                    assert_eq!(stage_slot_of("test-prof-slot-b"), Some(b));
                }
                assert_eq!(current_stage_slot(), 0);
            })
            .join()
            .unwrap();
        });
        set_profiling(false);
    }

    #[test]
    fn cpu_clock_advances_under_load() {
        if !cpu_clock_supported() {
            return;
        }
        let before = thread_cpu_ns();
        // Busy work the optimizer cannot remove.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        assert!(thread_cpu_ns() > before, "thread CPU clock did not advance");
    }

    #[test]
    fn profiled_spans_record_cpu_histograms() {
        let _guard = toggle_lock().lock();
        set_profiling(true);
        {
            let _s = Span::stage("test-prof-cpu");
            let mut acc = 0u64;
            for i in 0..500_000u64 {
                acc = acc.wrapping_mul(2862933555777941757).wrapping_add(i);
            }
            std::hint::black_box(acc);
        }
        set_profiling(false);
        let h = crate::metrics::histogram("test-prof-cpu/cpu_ns");
        assert!(
            h.count() >= 1,
            "profiled span did not record a cpu_ns sample"
        );
        if cpu_clock_supported() {
            assert!(h.sum() > 0, "cpu_ns recorded as zero under busy work");
        }
    }
}
