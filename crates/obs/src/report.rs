//! Snapshots of the global registry, rendered as a per-stage TSV
//! table (for `--metrics` on stderr) or machine-readable JSON (for
//! `ute report`). JSON is hand-rolled: the report shape is flat and
//! this crate stays dependency-free.

use crate::metrics::{self, Histogram, HIST_BUCKETS};
use crate::sampler::SamplerTick;

/// One histogram, frozen.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Per-bucket counts (see [`Histogram::bucket_bounds`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) from the log₂ buckets:
    /// find the bucket holding the rank-`⌈q·count⌉` observation and
    /// interpolate linearly inside it, clamped to the observed
    /// `[min, max]` so the tails never overshoot the true extremes.
    /// Returns 0 when empty. Log₂ buckets bound the relative error at
    /// 2× within a bucket; in practice the min/max clamp and the
    /// interpolation keep p50/p95/p99 well inside that.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = Histogram::bucket_bounds(i);
                // Position of the rank within this bucket, in (0, 1].
                let frac = (rank - seen) as f64 / c as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return (est as u64).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// p50 shorthand.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// p95 shorthand.
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// p99 shorthand.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

/// Every metric in the registry, frozen at one instant, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Takes a snapshot of the global registry.
pub fn snapshot() -> MetricsSnapshot {
    let reg = metrics::global();
    let mut snap = MetricsSnapshot::default();
    reg.visit_counters(|name, v| snap.counters.push((name.to_string(), v)));
    reg.visit_gauges(|name, v| snap.gauges.push((name.to_string(), v)));
    reg.visit_histograms(|name, h| {
        snap.histograms.push((
            name.to_string(),
            HistogramSnapshot {
                count: h.count(),
                sum: h.sum(),
                min: h.min(),
                max: h.max(),
                buckets: h.bucket_counts(),
            },
        ))
    });
    snap.counters.sort();
    snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    snap
}

impl MetricsSnapshot {
    /// A copy with every scheduling- and wall-clock-dependent metric
    /// removed: names ending in `_ns` (span timings, fitted residuals),
    /// the `pipeline/` execution-layer metrics (worker counts, queue
    /// depths — functions of `--jobs`, not of the trace), and the
    /// `obs/sampler/` bookkeeping (tick counts are a function of wall
    /// time). Deterministic `salvage/*` and `obs/*` totals are *kept*,
    /// so fault-matrix CI can assert on degraded-node and drop counts
    /// byte-comparably. What remains is a pure function of the input,
    /// so `ute report --stable` output is byte-comparable across runs
    /// and across `--jobs` values — the form the CI determinism gate
    /// diffs.
    pub fn stable(&self) -> MetricsSnapshot {
        let keep = |name: &str| {
            !name.ends_with("_ns")
                && !name.starts_with("pipeline/")
                && !name.starts_with("obs/sampler/")
        };
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|(n, _)| keep(n))
                .cloned()
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(n, _)| keep(n))
                .cloned()
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(n, _)| keep(n))
                .cloned()
                .collect(),
        }
    }

    /// Value of a counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of a gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// A histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The `--metrics` table: one `kind<TAB>name<TAB>value...` row per
    /// metric, grouped by pipeline stage (the `stage/` name prefix).
    /// Histograms render as count/mean/min/max/percentiles in
    /// nanosecond-friendly units. Zero-valued metrics are kept: "this
    /// never happened" is information.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("kind\tname\tvalue\tdetail\n");
        for (name, v) in &self.counters {
            out.push_str(&format!("counter\t{name}\t{v}\t\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge\t{name}\t{}\t\n", fmt_f64(*v)));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram\t{name}\t{}\tmean={} min={} max={} sum={} p50={} p95={} p99={}\n",
                h.count,
                fmt_f64(h.mean()),
                h.min,
                h.max,
                h.sum,
                h.p50(),
                h.p95(),
                h.p99(),
            ));
        }
        out
    }

    /// The `ute report` JSON object (`{"counters": {...}, "gauges":
    /// {...}, "histograms": {...}}`) with percentile fields; see
    /// [`MetricsSnapshot::render_json`].
    pub fn to_json(&self) -> String {
        self.render_json(&ReportOptions::default())
    }

    /// Renders the report JSON. Histogram buckets serialize sparsely
    /// as `[lo, hi, count]` triples; `opts.percentiles` adds
    /// p50/p95/p99 fields (off under `--stable`: the estimates are
    /// interpolated floats of wall-clock data and would defeat
    /// byte-comparability); `opts.timeseries` appends the sampler's
    /// tick ring as a `"timeseries"` array.
    pub fn render_json(&self, opts: &ReportOptions<'_>) -> String {
        let mut s = String::from("{\n  \"counters\": {");
        push_entries(&mut s, self.counters.iter(), |s, v| {
            s.push_str(&v.to_string())
        });
        s.push_str("},\n  \"gauges\": {");
        push_entries(&mut s, self.gauges.iter(), |s, v| s.push_str(&fmt_f64(*v)));
        s.push_str("},\n  \"histograms\": {");
        push_entries(&mut s, self.histograms.iter(), |s, h| {
            s.push_str(&format!(
                "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, ",
                h.count,
                h.sum,
                h.min,
                h.max,
                fmt_f64(h.mean()),
            ));
            if opts.percentiles {
                s.push_str(&format!(
                    "\"p50\": {}, \"p95\": {}, \"p99\": {}, ",
                    h.p50(),
                    h.p95(),
                    h.p99(),
                ));
            }
            s.push_str("\"buckets\": [");
            let mut first = true;
            for (i, &c) in h.buckets.iter().enumerate().take(HIST_BUCKETS) {
                if c == 0 {
                    continue;
                }
                if !first {
                    s.push_str(", ");
                }
                first = false;
                let (lo, hi) = Histogram::bucket_bounds(i);
                s.push_str(&format!("[{lo}, {hi}, {c}]"));
            }
            s.push_str("]}");
        });
        s.push('}');
        if let Some(ticks) = opts.timeseries {
            s.push_str(",\n  \"timeseries\": [");
            let mut first_tick = true;
            for t in ticks {
                if !first_tick {
                    s.push(',');
                }
                first_tick = false;
                s.push_str(&format!("\n    {{\"at_ns\": {}, \"deltas\": {{", t.at_ns));
                let mut first = true;
                for (name, d) in &t.counter_deltas {
                    if !first {
                        s.push_str(", ");
                    }
                    first = false;
                    s.push_str(&format!("\"{}\": {d}", json_escape(name)));
                }
                s.push_str("}, \"gauges\": {");
                let mut first = true;
                for (name, v) in &t.gauges {
                    if !first {
                        s.push_str(", ");
                    }
                    first = false;
                    s.push_str(&format!("\"{}\": {}", json_escape(name), fmt_f64(*v)));
                }
                s.push_str("}}");
            }
            s.push_str("\n  ]");
        }
        s.push_str("\n}\n");
        s
    }
}

/// Options for [`MetricsSnapshot::render_json`].
#[derive(Debug, Default)]
pub struct ReportOptions<'a> {
    /// Include p50/p95/p99 estimates on histograms.
    pub percentiles: bool,
    /// Sampler ticks to append as a `"timeseries"` array.
    pub timeseries: Option<&'a [SamplerTick]>,
}

/// Writes `"name": <value>` entries joined by commas.
fn push_entries<'a, T: 'a>(
    s: &mut String,
    entries: impl Iterator<Item = &'a (String, T)>,
    mut value: impl FnMut(&mut String, &T),
) {
    let mut first = true;
    for (name, v) in entries {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str("\n    \"");
        s.push_str(&json_escape(name));
        s.push_str("\": ");
        value(s, v);
    }
    s.push_str("\n  ");
}

/// JSON string escaping for metric names.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` so JSON stays valid (no NaN/inf) and integers stay
/// integral-looking.
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{counter, gauge, histogram};

    #[test]
    fn snapshot_finds_metrics_and_renders() {
        counter("test/report/c").add(7);
        gauge("test/report/g").set(2.5);
        histogram("test/report/h").record(100);
        let snap = snapshot();
        assert_eq!(snap.counter("test/report/c"), Some(7));
        assert_eq!(snap.gauge("test/report/g"), Some(2.5));
        assert_eq!(snap.histogram("test/report/h").unwrap().count, 1);

        let tsv = snap.to_tsv();
        assert!(tsv.contains("counter\ttest/report/c\t7"));
        assert!(tsv.starts_with("kind\tname\tvalue"));

        let json = snap.to_json();
        assert!(json.contains("\"test/report/c\": 7"));
        assert!(json.contains("\"gauges\""));
        // Buckets are sparse [lo, hi, count] triples.
        assert!(json.contains("[64, 128, 1]"), "{json}");
    }

    #[test]
    fn json_escapes_names() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn stable_drops_wall_clock_and_pipeline_metrics() {
        counter("test/stable/kept").add(1);
        counter("pipeline/test_stable_batches").add(3);
        counter("salvage/test_stable_kept").add(2);
        counter("obs/test_stable_kept").add(4);
        counter("obs/sampler/test_stable_ticks").add(9);
        gauge("test/stable/span_ns").set(123.0);
        histogram("teststage/span_ns").record(55);
        let snap = snapshot().stable();
        assert_eq!(snap.counter("test/stable/kept"), Some(1));
        assert_eq!(snap.counter("pipeline/test_stable_batches"), None);
        assert_eq!(snap.gauge("test/stable/span_ns"), None);
        assert!(snap.histogram("teststage/span_ns").is_none());
        // Deterministic salvage/obs totals survive the filter; sampler
        // bookkeeping (wall-clock tick counts) does not.
        assert_eq!(snap.counter("salvage/test_stable_kept"), Some(2));
        assert_eq!(snap.counter("obs/test_stable_kept"), Some(4));
        assert_eq!(snap.counter("obs/sampler/test_stable_ticks"), None);
    }

    #[test]
    fn percentiles_from_log2_buckets() {
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![0; HIST_BUCKETS],
        };
        assert_eq!(empty.p50(), 0);

        // A point mass: every percentile is the value itself (the
        // min/max clamp collapses the bucket interpolation).
        let h = histogram("test/report/pct_point");
        for _ in 0..100 {
            h.record(1000);
        }
        let snap = snapshot();
        let hs = snap.histogram("test/report/pct_point").unwrap();
        assert_eq!(hs.p50(), 1000);
        assert_eq!(hs.p99(), 1000);

        // A two-mode distribution: p50 sits in the low mode, p99 in
        // the high one, and everything stays within [min, max].
        let h = histogram("test/report/pct_bimodal");
        for _ in 0..95 {
            h.record(100);
        }
        for _ in 0..5 {
            h.record(100_000);
        }
        let snap = snapshot();
        let hs = snap.histogram("test/report/pct_bimodal").unwrap();
        assert!(hs.p50() >= 64 && hs.p50() < 128, "p50 = {}", hs.p50());
        assert!(hs.p99() >= 65_536, "p99 = {}", hs.p99());
        assert!(hs.p99() <= 100_000);
        // Monotone in q.
        assert!(hs.p50() <= hs.p95() && hs.p95() <= hs.p99());
    }

    #[test]
    fn render_json_options_add_percentiles_and_timeseries() {
        histogram("test/report/opts_h").record(512);
        let snap = snapshot();
        let plain = snap.to_json();
        assert!(!plain.contains("\"p95\""), "percentiles off by default");
        let ticks = vec![crate::sampler::SamplerTick {
            at_ns: 42,
            counter_deltas: vec![("merge/records_in".into(), 7)],
            gauges: vec![("pipeline/jobs".into(), 2.0)],
        }];
        let full = snap.render_json(&ReportOptions {
            percentiles: true,
            timeseries: Some(&ticks),
        });
        assert!(full.contains("\"p50\""), "{full}");
        assert!(full.contains("\"timeseries\": ["));
        assert!(full.contains("\"at_ns\": 42"));
        assert!(full.contains("\"merge/records_in\": 7"));
        assert!(full.contains("\"pipeline/jobs\": 2"));
    }
}
