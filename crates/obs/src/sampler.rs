//! Live metrics sampler: an opt-in background thread that snapshots
//! every counter and gauge on a fixed interval into a bounded ring of
//! timestamped deltas.
//!
//! Two consumers: during long runs the sampler prints one progress
//! line per tick to stderr (records/sec and bytes/sec derived from the
//! counter deltas, plus any salvage activity), and at the end of a run
//! `ute report` folds the retained ticks into a `"timeseries"` JSON
//! block, so a single report shows not just *how much* each stage did
//! but *when* it did it — the aggregate-over-spans view that localizes
//! pipeline bottlenecks without opening the full self-trace.
//!
//! The ring is bounded ([`RING_CAPACITY`]): on overflow the oldest
//! tick is evicted and counted in `obs/sampler/ticks_evicted`, so an
//! arbitrarily long run keeps the most recent window rather than
//! growing without bound. All `obs/sampler/*` metrics are wall-clock
//! artifacts and are excluded from `--stable` reports.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crate::metrics;
use crate::span::now_ns;

/// Maximum retained ticks: at the 250 ms default interval this keeps
/// the last ~17 minutes; older ticks are evicted oldest-first.
pub const RING_CAPACITY: usize = 4096;

/// One sampler tick: counter *deltas* since the previous tick and
/// current gauge levels, stamped with ns since the process epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerTick {
    /// When the tick was taken, ns since the process epoch.
    pub at_ns: u64,
    /// Counter increments since the previous tick (zero deltas are
    /// omitted), sorted by name.
    pub counter_deltas: Vec<(String, u64)>,
    /// Gauge levels at the tick, sorted by name.
    pub gauges: Vec<(String, f64)>,
}

struct SamplerShared {
    stop: AtomicBool,
    ticks: Mutex<VecDeque<SamplerTick>>,
}

struct SamplerState {
    shared: Arc<SamplerShared>,
    thread: std::thread::JoinHandle<()>,
}

fn global_state() -> &'static Mutex<Option<SamplerState>> {
    static STATE: OnceLock<Mutex<Option<SamplerState>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

/// Starts the global sampler thread, ticking every `interval` and
/// printing a progress line to stderr per tick when `progress` is set.
/// A second start while one is running is a no-op (the first wins).
pub fn start(interval: Duration, progress: bool) {
    let mut state = global_state().lock();
    if state.is_some() {
        return;
    }
    let shared = Arc::new(SamplerShared {
        stop: AtomicBool::new(false),
        ticks: Mutex::new(VecDeque::new()),
    });
    let worker = Arc::clone(&shared);
    let interval = interval.max(Duration::from_millis(1));
    let thread = std::thread::Builder::new()
        .name("ute-obs-sampler".into())
        .spawn(move || sampler_loop(&worker, interval, progress))
        .expect("spawn sampler thread");
    *state = Some(SamplerState { shared, thread });
}

/// Whether the global sampler is currently running.
pub fn running() -> bool {
    global_state().lock().is_some()
}

/// Stops the global sampler (if running) and returns every retained
/// tick, oldest first. Returns an empty vec when it was not running —
/// callers can stop unconditionally.
pub fn stop() -> Vec<SamplerTick> {
    let state = global_state().lock().take();
    let Some(state) = state else {
        return Vec::new();
    };
    state.shared.stop.store(true, Ordering::Relaxed);
    state.thread.thread().unpark();
    let _ = state.thread.join();
    let mut ring = state.shared.ticks.lock();
    let ticks = ring.drain(..).collect();
    drop(ring);
    ticks
}

fn sampler_loop(shared: &SamplerShared, interval: Duration, progress: bool) {
    let mut prev: HashMap<String, u64> = HashMap::new();
    let started = now_ns();
    let mut last_tick_ns = started;
    // Seed the baseline so the first tick reports deltas since start,
    // not absolute totals of whatever ran before the sampler.
    metrics::global().visit_counters(|name, v| {
        prev.insert(name.to_string(), v);
    });
    while !shared.stop.load(Ordering::Relaxed) {
        std::thread::park_timeout(interval);
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let tick = take_tick(&mut prev);
        if progress {
            eprintln!("{}", progress_line(started, last_tick_ns, &tick));
        }
        last_tick_ns = tick.at_ns;
        metrics::counter("obs/sampler/ticks").inc();
        let mut ring = shared.ticks.lock();
        if ring.len() >= RING_CAPACITY {
            ring.pop_front();
            metrics::counter("obs/sampler/ticks_evicted").inc();
        }
        ring.push_back(tick);
    }
}

/// Snapshots counters/gauges and computes deltas against `prev`
/// (updating it in place). Counters only ever grow between ticks
/// except across a `metrics::reset()` (`ute report` resets before its
/// measured run) — saturate so a reset shows as a zero delta, not a
/// wrap.
fn take_tick(prev: &mut HashMap<String, u64>) -> SamplerTick {
    let mut counter_deltas = Vec::new();
    metrics::global().visit_counters(|name, v| {
        let before = prev.insert(name.to_string(), v).unwrap_or(0);
        let delta = v.saturating_sub(before);
        if delta > 0 {
            counter_deltas.push((name.to_string(), delta));
        }
    });
    let mut gauges = Vec::new();
    metrics::global().visit_gauges(|name, v| gauges.push((name.to_string(), v)));
    counter_deltas.sort();
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    SamplerTick {
        at_ns: now_ns(),
        counter_deltas,
        gauges,
    }
}

/// One human progress line, e.g.
/// `[obs +1.0s] 812.0k records/s, 14.2M bytes/s, 3 salvage events`.
/// Rates come from this tick's counter deltas over the actual window
/// since the previous tick (the interval is not exact under load).
fn progress_line(started_ns: u64, prev_tick_ns: u64, tick: &SamplerTick) -> String {
    let dt = (tick.at_ns.saturating_sub(started_ns)) as f64 / 1e9;
    let window = ((tick.at_ns.saturating_sub(prev_tick_ns)) as f64 / 1e9).max(1e-3);
    let mut records = 0u64;
    let mut bytes = 0u64;
    let mut salvage = 0u64;
    for (name, d) in &tick.counter_deltas {
        match name.as_str() {
            "merge/records_in" | "stats/records_scanned" => records += d,
            "format/bytes_written" | "rawtrace/bytes_flushed" => bytes += d,
            _ if name.starts_with("salvage/") => salvage += d,
            _ => {}
        }
    }
    format!(
        "[obs +{dt:.1}s] {} records/s, {} bytes/s, {salvage} salvage events",
        human(records as f64 / window),
        human(bytes as f64 / window),
    )
}

/// `1234567.0` → `"1.2M"`.
fn human(v: f64) -> String {
    if !v.is_finite() {
        "0".into()
    } else if v >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_collects_deltas_and_stops() {
        metrics::counter("test/sampler/work").add(5);
        start(Duration::from_millis(5), false);
        assert!(running());
        // Second start is a no-op, not a second thread.
        start(Duration::from_millis(5), false);
        for _ in 0..50 {
            metrics::counter("test/sampler/work").add(7);
            std::thread::sleep(Duration::from_millis(1));
        }
        let ticks = stop();
        assert!(!running());
        assert!(!ticks.is_empty(), "sampler took no ticks in 50ms");
        // The pre-start value (5) is baseline, so total observed delta
        // for our counter is at most what the loop added.
        let total: u64 = ticks
            .iter()
            .flat_map(|t| t.counter_deltas.iter())
            .filter(|(n, _)| n == "test/sampler/work")
            .map(|(_, d)| *d)
            .sum();
        assert!(total <= 50 * 7, "baseline leaked into deltas: {total}");
        // Ticks are time-ordered.
        assert!(ticks.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        // Stopping again is a harmless no-op.
        assert!(stop().is_empty());
    }

    #[test]
    fn human_rates_render() {
        assert_eq!(human(12.0), "12");
        assert_eq!(human(1200.0), "1.2k");
        assert_eq!(human(2_500_000.0), "2.5M");
        assert_eq!(human(3.2e9), "3.2G");
        assert_eq!(human(f64::NAN), "0");
    }
}
