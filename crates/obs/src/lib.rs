//! # ute-obs — the framework observes itself
//!
//! The paper's thesis is that you cannot tune what you cannot observe.
//! This crate turns that lens back on the reproduction: every stage of
//! the Figure-2 pipeline (simulate → trace → convert → merge → SLOG →
//! stats → view) reports counters, gauges, log₂-bucket histograms, and
//! wall-clock spans into one process-global [`MetricsRegistry`].
//!
//! Design rules:
//!
//! * **Lock-free on the hot path.** Every metric handle is a leaked
//!   `&'static` atomic cell; updating one is a single relaxed atomic op.
//!   A mutex is taken only when a metric name is first registered.
//! * **No dependencies on the pipeline.** The crates being measured
//!   (`ute-format`, `ute-merge`, ...) depend on this crate, so this
//!   crate cannot depend on them. The self-trace *sink* — which
//!   re-emits captured spans as UTE interval records through the
//!   `ute-format` writer, so the framework's own run is viewable with
//!   `ute preview`/`ute view` — therefore lives one layer up, in
//!   `ute-cli` (`selftrace` module), consuming [`span::drain_spans`].
//! * **Always on, nearly free.** Counters are maintained
//!   unconditionally (an uncontended atomic add is ~1 ns). Span
//!   *capture* for self-tracing allocates, so it is gated behind
//!   [`span::set_capture`].
//!
//! ```
//! use ute_obs as obs;
//! obs::counter("demo/widgets").add(3);
//! {
//!     let _span = obs::Span::enter("demo", "frobnicate");
//!     // ... work ...
//! }
//! let snap = obs::snapshot();
//! assert_eq!(snap.counter("demo/widgets"), Some(3));
//! ```

pub mod metrics;
pub mod prof;
pub mod report;
pub mod sampler;
pub mod span;

pub use metrics::{counter, gauge, histogram, reset, Counter, Gauge, Histogram, MetricsRegistry};
pub use prof::{
    cpu_clock_supported, current_stage_slot, profiling_enabled, sample_stacks, set_profiling,
    stage_slot_name, stage_slot_of, thread_cpu_ns, LiveFrame, MAX_STAGE_SLOTS,
};
pub use report::{snapshot, MetricsSnapshot, ReportOptions};
pub use sampler::SamplerTick;
pub use span::{
    current_span, drain_flows, drain_spans, flow_begin, flow_end, new_link, set_capture,
    set_capture_limit, thread_index, FinishedSpan, FlowPoint, Span,
};
