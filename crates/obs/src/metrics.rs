//! The global metrics registry: named counters, gauges, and
//! log₂-bucket histograms.
//!
//! Handles are `&'static` references to leaked atomic cells, so the
//! hot path is a single relaxed atomic operation with no locking.
//! The registry mutex is held only while resolving a name to a handle
//! — callers on per-record paths should resolve once and reuse the
//! handle (see e.g. the k-way merge, which caches its counters in the
//! merge structure).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time level (queue depth, heap size, fit residual).
/// Stored as `f64` bits so both sizes and ratios fit naturally.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the level to `v` if `v` is higher (high-water mark).
    #[inline]
    pub fn set_max(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current level.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

/// Number of log₂ buckets: bucket 0 holds zeros, bucket `i` holds
/// values in `[2^(i-1), 2^i)`, up to the full `u64` range.
pub const HIST_BUCKETS: usize = 65;

/// Lock-free histogram with power-of-two bucket boundaries.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// The bucket a value lands in: 0 for 0, else `floor(log2(v)) + 1`.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive-exclusive value range `[lo, hi)` of a bucket
    /// (bucket 0 is the singleton `[0, 1)`).
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), 1 << i),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX && self.count() == 0 {
            0
        } else {
            v
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Per-bucket observation counts.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Name → handle maps. One per metric kind so a counter and a
/// histogram may not collide under one name.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<HashMap<String, &'static Counter>>,
    gauges: Mutex<HashMap<String, &'static Gauge>>,
    histograms: Mutex<HashMap<String, &'static Histogram>>,
}

impl MetricsRegistry {
    /// Resolves (registering on first use) a counter.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut map = self.counters.lock();
        if let Some(c) = map.get(name) {
            return c;
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::default()));
        map.insert(name.to_string(), c);
        c
    }

    /// Resolves (registering on first use) a gauge.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut map = self.gauges.lock();
        if let Some(g) = map.get(name) {
            return g;
        }
        let g: &'static Gauge = Box::leak(Box::new(Gauge::default()));
        map.insert(name.to_string(), g);
        g
    }

    /// Resolves (registering on first use) a histogram.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut map = self.histograms.lock();
        if let Some(h) = map.get(name) {
            return h;
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::default()));
        map.insert(name.to_string(), h);
        h
    }

    /// Zeroes every registered metric (names stay registered). Used by
    /// `ute report` so one process can measure several runs, and by
    /// tests.
    pub fn reset(&self) {
        for c in self.counters.lock().values() {
            c.reset();
        }
        for g in self.gauges.lock().values() {
            g.reset();
        }
        for h in self.histograms.lock().values() {
            h.reset();
        }
    }

    pub(crate) fn visit_counters(&self, mut f: impl FnMut(&str, u64)) {
        for (name, c) in self.counters.lock().iter() {
            f(name, c.get());
        }
    }

    pub(crate) fn visit_gauges(&self, mut f: impl FnMut(&str, f64)) {
        for (name, g) in self.gauges.lock().iter() {
            f(name, g.get());
        }
    }

    pub(crate) fn visit_histograms(&self, mut f: impl FnMut(&str, &'static Histogram)) {
        for (name, h) in self.histograms.lock().iter() {
            f(name, h);
        }
    }
}

/// The process-global registry.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::default)
}

/// Global counter by name.
pub fn counter(name: &str) -> &'static Counter {
    global().counter(name)
}

/// Global gauge by name.
pub fn gauge(name: &str) -> &'static Gauge {
    global().gauge(name)
}

/// Global histogram by name.
pub fn histogram(name: &str) -> &'static Histogram {
    global().histogram(name)
}

/// Zeroes every metric in the global registry.
pub fn reset() {
    global().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = counter("test/metrics/counter_accumulates");
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn same_name_same_handle() {
        let a = counter("test/metrics/same_handle") as *const Counter;
        let b = counter("test/metrics/same_handle") as *const Counter;
        assert_eq!(a, b);
    }

    #[test]
    fn gauge_set_max_is_high_water() {
        let g = gauge("test/metrics/gauge_hwm");
        g.set_max(3.0);
        g.set_max(10.0);
        g.set_max(7.0);
        assert_eq!(g.get(), 10.0);
    }

    #[test]
    fn histogram_stats() {
        let h = histogram("test/metrics/hist_stats");
        for v in [0u64, 1, 2, 3, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 1); // 0
        assert_eq!(buckets[1], 1); // 1
        assert_eq!(buckets[2], 2); // 2, 3
        assert_eq!(buckets[11], 1); // 1024
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket i (i ≥ 1) holds [2^(i-1), 2^i - 1]; bucket 0 holds {0}.
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        for i in 1..=63u32 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i).wrapping_sub(1).max(lo);
            assert_eq!(Histogram::bucket_of(lo), i as usize, "low edge of {i}");
            assert_eq!(Histogram::bucket_of(hi), i as usize, "high edge of {i}");
            if i < 63 {
                assert_eq!(Histogram::bucket_of(hi + 1), i as usize + 1);
            }
            // bucket_bounds is [lo, hi): hi is one past the last value.
            let (blo, bhi) = Histogram::bucket_bounds(i as usize);
            assert_eq!((blo, bhi), (lo, 1u64 << i), "bounds of {i}");
        }
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn concurrent_counters_and_histograms_are_exact() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let c = counter("test/metrics/concurrent_total");
        let h = histogram("test/metrics/concurrent_hist");
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for v in 0..PER_THREAD {
                        c.inc();
                        h.record(v % 16);
                    }
                });
            }
        });
        let n = THREADS as u64 * PER_THREAD;
        assert_eq!(c.get(), n);
        assert_eq!(h.count(), n);
        // Each thread records 0..16 uniformly: sum is exactly known.
        assert_eq!(
            h.sum(),
            THREADS as u64 * (PER_THREAD / 16) * (0..16).sum::<u64>()
        );
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn registration_race_yields_one_handle() {
        // N threads registering the same name concurrently must all get
        // the same cell, so increments can never be split across copies.
        const THREADS: usize = 8;
        let ptrs: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    s.spawn(|| {
                        let c = counter("test/metrics/registration_race");
                        c.inc();
                        c as *const Counter as usize
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ptrs.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(
            counter("test/metrics/registration_race").get(),
            THREADS as u64
        );
    }
}
