//! Feature-gated counting global allocator.
//!
//! With the `count-allocs` feature on, this crate installs a
//! `#[global_allocator]` that wraps the system allocator and, while
//! profiling is enabled, attributes every allocation (count and bytes)
//! to the stage slot of the innermost profiled span on the allocating
//! thread (`ute_obs::current_stage_slot`). Slot 0 collects allocations
//! made outside any profiled span.
//!
//! The recording path is strictly atomics on fixed static arrays — no
//! locks, no allocation, no TLS destructors — because it runs inside
//! `GlobalAlloc`. Disarmed (profiling off) it costs one relaxed load
//! per allocation; with the feature off entirely, the system allocator
//! is untouched and [`slot_alloc_stats`] reports zeros.

/// Allocation totals attributed to one stage slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of allocation calls (alloc, alloc_zeroed, realloc).
    pub allocs: u64,
    /// Total bytes requested by those calls.
    pub bytes: u64,
}

/// Whether the counting allocator is compiled in.
pub fn tracking_enabled() -> bool {
    cfg!(feature = "count-allocs")
}

/// Allocation totals for a stage slot (see `ute_obs::stage_slot_of`).
/// Zeros when the feature is off or the slot is out of range.
pub fn slot_alloc_stats(slot: usize) -> AllocStats {
    #[cfg(feature = "count-allocs")]
    {
        use std::sync::atomic::Ordering;
        if slot < ute_obs::MAX_STAGE_SLOTS {
            return AllocStats {
                allocs: imp::ALLOCS[slot].load(Ordering::Relaxed),
                bytes: imp::BYTES[slot].load(Ordering::Relaxed),
            };
        }
        AllocStats::default()
    }
    #[cfg(not(feature = "count-allocs"))]
    {
        let _ = slot;
        AllocStats::default()
    }
}

/// Allocation totals for a stage by name; zeros when the stage never
/// ran a profiled span (no slot) or tracking is off.
pub fn stage_alloc_stats(stage: &str) -> AllocStats {
    match ute_obs::stage_slot_of(stage) {
        Some(slot) => slot_alloc_stats(slot),
        None => AllocStats::default(),
    }
}

#[cfg(feature = "count-allocs")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};
    use ute_obs::MAX_STAGE_SLOTS;

    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    pub(super) static ALLOCS: [AtomicU64; MAX_STAGE_SLOTS] = [ZERO; MAX_STAGE_SLOTS];
    pub(super) static BYTES: [AtomicU64; MAX_STAGE_SLOTS] = [ZERO; MAX_STAGE_SLOTS];

    /// The counting wrapper around the system allocator.
    pub struct CountingAlloc;

    #[inline]
    fn record(size: usize) {
        if !ute_obs::profiling_enabled() {
            return;
        }
        let slot = ute_obs::current_stage_slot().min(MAX_STAGE_SLOTS - 1);
        ALLOCS[slot].fetch_add(1, Ordering::Relaxed);
        BYTES[slot].fetch_add(size as u64, Ordering::Relaxed);
    }

    // SAFETY: delegates every operation to the system allocator; the
    // counting side effect touches only static atomics.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            record(new_size);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

#[cfg(all(test, feature = "count-allocs"))]
mod tests {
    use super::*;
    use ute_obs::Span;

    #[test]
    fn allocations_attribute_to_the_active_stage() {
        ute_obs::set_profiling(true);
        let grown = {
            let _s = Span::stage("test-profile-alloc");
            let before = stage_alloc_stats("test-profile-alloc");
            let v: Vec<u8> = Vec::with_capacity(1 << 16);
            std::hint::black_box(&v);
            let after = stage_alloc_stats("test-profile-alloc");
            after.allocs > before.allocs && after.bytes >= before.bytes + (1 << 16) as u64
        };
        ute_obs::set_profiling(false);
        assert!(grown, "Vec allocation was not attributed to the stage");
    }
}
