//! The ranked bottleneck report: fuses sampler self-time, per-stage
//! CPU utilization, backpressure counters, and allocator attribution
//! into one structure with text and JSON renderings.

use crate::alloc::{stage_alloc_stats, tracking_enabled};
use crate::sampler::ProfileData;
use ute_obs::MetricsSnapshot;

/// One ranked row of the bottleneck report (one pipeline stage).
#[derive(Debug, Clone)]
pub struct StageRow {
    /// Stage name ("convert", "merge", "pipeline", ...).
    pub stage: String,
    /// Sampler ticks whose leaf frame was in this stage.
    pub self_samples: u64,
    /// Estimated self time: `self_samples × mean tick interval`.
    pub self_ns: u64,
    /// Self time as a share of profiled wall time, in percent. Sums
    /// can exceed 100 when several threads run concurrently — that is
    /// CPU-weighted attribution, not an error.
    pub self_pct: f64,
    /// Total wall time of this stage's spans (`{stage}/span_ns` sum).
    pub wall_ns: u64,
    /// Total thread CPU time of this stage's spans (`{stage}/cpu_ns`).
    pub cpu_ns: u64,
    /// `cpu_ns / wall_ns`: ~1.0 means compute-bound, ~0 means the
    /// stage spent its life blocked (or the CPU clock is unsupported).
    pub utilization: f64,
    /// Allocation calls attributed to the stage (needs `count-allocs`).
    pub allocs: u64,
    /// Bytes requested by those calls.
    pub alloc_bytes: u64,
}

/// Channel and pool backpressure totals over the profiled run.
#[derive(Debug, Clone, Default)]
pub struct Backpressure {
    /// Batch sends that found the merge channel full and blocked.
    pub blocked_sends: u64,
    /// Total time blocked in those sends, ns.
    pub send_wait_ns: u64,
    /// p95 of one blocked send's wait, ns.
    pub send_wait_p95_ns: u64,
    /// Consumer receives that found the channel empty and blocked.
    pub blocked_recvs: u64,
    /// Total time blocked in those receives, ns.
    pub recv_wait_ns: u64,
    /// p95 of one blocked receive's wait, ns.
    pub recv_wait_p95_ns: u64,
    /// Pool-semaphore acquires that had to wait for a permit.
    pub permit_waits: u64,
    /// Total time waiting for permits, ns.
    pub permit_wait_ns: u64,
    /// High-water batches in flight (`pipeline/queue_depth_max`).
    pub queue_depth_max: f64,
}

/// The full `ute profile` report.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Workload label the run profiled.
    pub workload: String,
    /// Profiled wall time (sampler start → stop), ns.
    pub wall_ns: u64,
    /// Configured sampling interval, µs.
    pub interval_us: u64,
    /// Sampler wakeups over the run.
    pub ticks: u64,
    /// Total leaf-frame samples across all threads.
    pub leaf_samples: u64,
    /// Share of ticks that saw at least one open span, 0..=1. Low
    /// coverage means the profiled region missed most of the run.
    pub coverage: f64,
    /// Whether the per-thread CPU clock is real on this platform.
    pub cpu_clock: bool,
    /// Whether the counting allocator is compiled in.
    pub alloc_tracking: bool,
    /// Distinct folded stacks captured.
    pub folded_stacks: usize,
    /// Ranked rows, highest self time first.
    pub stages: Vec<StageRow>,
    /// Backpressure totals.
    pub backpressure: Backpressure,
}

/// Builds the report from the sampler's data and a metrics snapshot
/// taken after the run (for span/cpu histograms and backpressure).
pub fn build_report(workload: &str, data: &ProfileData, snap: &MetricsSnapshot) -> ProfileReport {
    let wall_ns = data.stopped_ns.saturating_sub(data.started_ns);
    let tick_ns = data.tick_ns();
    let mut stages: Vec<StageRow> = data
        .leaf_by_stage
        .iter()
        .map(|(stage, &self_samples)| {
            let self_ns = self_samples * tick_ns;
            let self_pct = if wall_ns > 0 {
                self_ns as f64 / wall_ns as f64 * 100.0
            } else {
                0.0
            };
            let span_wall = snap
                .histogram(&format!("{stage}/span_ns"))
                .map(|h| h.sum)
                .unwrap_or(0);
            let span_cpu = snap
                .histogram(&format!("{stage}/cpu_ns"))
                .map(|h| h.sum)
                .unwrap_or(0);
            let utilization = if span_wall > 0 {
                span_cpu as f64 / span_wall as f64
            } else {
                0.0
            };
            let alloc = stage_alloc_stats(stage);
            StageRow {
                stage: stage.clone(),
                self_samples,
                self_ns,
                self_pct,
                wall_ns: span_wall,
                cpu_ns: span_cpu,
                utilization,
                allocs: alloc.allocs,
                alloc_bytes: alloc.bytes,
            }
        })
        .collect();
    stages.sort_by(|a, b| {
        b.self_samples
            .cmp(&a.self_samples)
            .then(a.stage.cmp(&b.stage))
    });

    let hist_sum_p95 = |name: &str| {
        snap.histogram(name)
            .map(|h| (h.sum, h.p95()))
            .unwrap_or((0, 0))
    };
    let (send_wait_ns, send_wait_p95_ns) = hist_sum_p95("pipeline/send_wait_ns");
    let (recv_wait_ns, recv_wait_p95_ns) = hist_sum_p95("pipeline/recv_wait_ns");
    let (permit_wait_ns, _) = hist_sum_p95("pipeline/permit_wait_ns");
    let backpressure = Backpressure {
        blocked_sends: snap.counter("pipeline/blocked_sends").unwrap_or(0),
        send_wait_ns,
        send_wait_p95_ns,
        blocked_recvs: snap.counter("pipeline/blocked_recvs").unwrap_or(0),
        recv_wait_ns,
        recv_wait_p95_ns,
        permit_waits: snap.counter("pipeline/permit_waits").unwrap_or(0),
        permit_wait_ns,
        queue_depth_max: snap.gauge("pipeline/queue_depth_max").unwrap_or(0.0),
    };

    ProfileReport {
        workload: workload.to_string(),
        wall_ns,
        interval_us: data.interval_us,
        ticks: data.ticks,
        leaf_samples: data.leaf_samples,
        coverage: if data.ticks > 0 {
            (data.ticks - data.idle_ticks) as f64 / data.ticks as f64
        } else {
            0.0
        },
        cpu_clock: ute_obs::cpu_clock_supported(),
        alloc_tracking: tracking_enabled(),
        folded_stacks: data.folded.len(),
        stages,
        backpressure,
    }
}

impl ProfileReport {
    /// Sum of stage self times, ns (the acceptance check compares this
    /// against `wall_ns`).
    pub fn total_self_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.self_ns).sum()
    }

    /// The report as JSON (hand-rolled like every sink in this tree —
    /// stable key order, no trailing spaces).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        // `enabled` leads so `ute report`'s profile block has the same
        // shape whether profiling ran (full report) or not
        // (`{"enabled": false}`).
        out.push_str("  \"enabled\": true,\n");
        out.push_str(&format!("  \"workload\": \"{}\",\n", esc(&self.workload)));
        out.push_str(&format!("  \"wall_ns\": {},\n", self.wall_ns));
        out.push_str(&format!("  \"interval_us\": {},\n", self.interval_us));
        out.push_str(&format!("  \"ticks\": {},\n", self.ticks));
        out.push_str(&format!("  \"leaf_samples\": {},\n", self.leaf_samples));
        out.push_str(&format!("  \"coverage\": {:.4},\n", self.coverage));
        out.push_str(&format!("  \"cpu_clock\": {},\n", self.cpu_clock));
        out.push_str(&format!("  \"alloc_tracking\": {},\n", self.alloc_tracking));
        out.push_str(&format!("  \"folded_stacks\": {},\n", self.folded_stacks));
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"stage\": \"{}\", \"self_samples\": {}, \"self_ns\": {}, \
                 \"self_pct\": {:.2}, \"wall_ns\": {}, \"cpu_ns\": {}, \
                 \"utilization\": {:.4}, \"allocs\": {}, \"alloc_bytes\": {}}}{}\n",
                esc(&s.stage),
                s.self_samples,
                s.self_ns,
                s.self_pct,
                s.wall_ns,
                s.cpu_ns,
                s.utilization,
                s.allocs,
                s.alloc_bytes,
                if i + 1 < self.stages.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        let b = &self.backpressure;
        out.push_str(&format!(
            "  \"backpressure\": {{\"blocked_sends\": {}, \"send_wait_ns\": {}, \
             \"send_wait_p95_ns\": {}, \"blocked_recvs\": {}, \"recv_wait_ns\": {}, \
             \"recv_wait_p95_ns\": {}, \"permit_waits\": {}, \"permit_wait_ns\": {}, \
             \"queue_depth_max\": {}}}\n",
            b.blocked_sends,
            b.send_wait_ns,
            b.send_wait_p95_ns,
            b.blocked_recvs,
            b.recv_wait_ns,
            b.recv_wait_p95_ns,
            b.permit_waits,
            b.permit_wait_ns,
            b.queue_depth_max as u64,
        ));
        out.push_str("}\n");
        out
    }

    /// The human-facing ranked table `ute profile` prints.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "profile: {} — wall {}, {} ticks @ {} µs, coverage {:.1}% (cpu clock: {}, alloc tracking: {})\n",
            self.workload,
            fmt_ns(self.wall_ns),
            self.ticks,
            self.interval_us,
            self.coverage * 100.0,
            if self.cpu_clock { "yes" } else { "no" },
            if self.alloc_tracking { "on" } else { "off" },
        ));
        out.push_str(&format!(
            "{:>4}  {:<12} {:>7} {:>10} {:>10} {:>10} {:>6} {:>9} {:>11}\n",
            "rank", "stage", "self%", "self", "wall", "cpu", "util%", "allocs", "bytes"
        ));
        for (i, s) in self.stages.iter().enumerate() {
            let (allocs, bytes) = if self.alloc_tracking {
                (s.allocs.to_string(), s.alloc_bytes.to_string())
            } else {
                ("-".to_string(), "-".to_string())
            };
            out.push_str(&format!(
                "{:>4}  {:<12} {:>6.1}% {:>10} {:>10} {:>10} {:>6.1} {:>9} {:>11}\n",
                i + 1,
                s.stage,
                s.self_pct,
                fmt_ns(s.self_ns),
                fmt_ns(s.wall_ns),
                fmt_ns(s.cpu_ns),
                s.utilization * 100.0,
                allocs,
                bytes,
            ));
        }
        let b = &self.backpressure;
        out.push_str(&format!(
            "backpressure: {} blocked sends ({} waited, p95 {}); {} blocked recvs ({} waited, p95 {}); {} permit waits ({}); queue depth max {}\n",
            b.blocked_sends,
            fmt_ns(b.send_wait_ns),
            fmt_ns(b.send_wait_p95_ns),
            b.blocked_recvs,
            fmt_ns(b.recv_wait_ns),
            fmt_ns(b.recv_wait_p95_ns),
            b.permit_waits,
            fmt_ns(b.permit_wait_ns),
            b.queue_depth_max as u64,
        ));
        out.push_str(&format!(
            "flamegraph: {} unique stacks in profile.folded\n",
            self.folded_stacks
        ));
        out
    }
}

/// Human-friendly nanoseconds: ns under 10 µs, µs under 10 ms, else ms.
fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{:.1} ms", ns as f64 / 1e6)
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> ProfileData {
        let mut d = ProfileData {
            interval_us: 500,
            started_ns: 1_000,
            stopped_ns: 101_000,
            ticks: 100,
            idle_ticks: 5,
            leaf_samples: 110,
            ..ProfileData::default()
        };
        d.folded
            .insert("cli profile;pipeline;convert node 0".into(), 60);
        d.folded.insert("cli profile;pipeline".into(), 50);
        d.leaf_by_stage.insert("convert".into(), 60);
        d.leaf_by_stage.insert("pipeline".into(), 50);
        d
    }

    #[test]
    fn report_ranks_by_self_samples_and_sums_self_time() {
        let data = sample_data();
        let snap = ute_obs::snapshot();
        let report = build_report("stencil", &data, &snap);
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[0].stage, "convert");
        assert!(report.stages[0].self_pct > report.stages[1].self_pct);
        // 110 leaf samples × 1 µs tick = 110 µs self over 100 µs wall.
        assert_eq!(report.total_self_ns(), 110_000);
        assert!(report.total_self_ns() as f64 >= 0.9 * report.wall_ns as f64);
        assert!((report.coverage - 0.95).abs() < 1e-9);
    }

    #[test]
    fn json_and_text_render_every_section() {
        let data = sample_data();
        let snap = ute_obs::snapshot();
        let report = build_report("stencil", &data, &snap);
        let json = report.to_json();
        for key in [
            "\"workload\"",
            "\"wall_ns\"",
            "\"coverage\"",
            "\"stages\"",
            "\"utilization\"",
            "\"backpressure\"",
            "\"queue_depth_max\"",
            "\"folded_stacks\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let text = report.render_text();
        assert!(text.contains("rank"));
        assert!(text.contains("backpressure:"));
        assert!(text.contains("flamegraph:"));
    }
}
