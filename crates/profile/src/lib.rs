//! # ute-profile — continuous profiling & bottleneck attribution
//!
//! The paper's framework measures the *traced application*; `ute-obs`
//! turned that lens inward with counters and spans. This crate closes
//! the remaining gap — *where do the cycles go, and what is waiting on
//! what?* — with four attribution sources, all strictly observational
//! (artifacts stay byte-identical with profiling on or off):
//!
//! 1. **Wall-clock stack sampler** ([`start`]/[`stop`]): a background
//!    thread periodically walks every worker's live span stack (the
//!    registry `ute_obs::sample_stacks` exposes) and folds each
//!    snapshot into flamegraph-ready semicolon-joined stacks
//!    ([`folded_output`], rendered by `inferno`/`flamegraph.pl`).
//!    Leaf frames attribute *self time* per stage.
//! 2. **Per-span CPU time**: with profiling on, `ute-obs` spans read
//!    `CLOCK_THREAD_CPUTIME_ID` at open/close, so every stage gets a
//!    wall-vs-CPU utilization ratio — blocking shows up as a number.
//! 3. **Backpressure counters** maintained by `ute-pipeline` on every
//!    bounded channel and the worker-pool semaphore (blocked sends and
//!    receives, wait-time log₂ histograms, live queue depth), sampled
//!    here into a counter track for the Chrome-trace export.
//! 4. A feature-gated (`count-allocs`) **counting global allocator**
//!    attributing allocation counts/bytes to the active stage slot.
//!
//! [`build_report`] fuses all four into the ranked bottleneck report
//! behind `ute profile`.

pub mod alloc;
pub mod report;
pub mod sampler;

pub use alloc::{slot_alloc_stats, stage_alloc_stats, tracking_enabled, AllocStats};
pub use report::{build_report, Backpressure, ProfileReport, StageRow};
pub use sampler::{
    folded_output, running, start, stop, take_track, CounterSample, ProfileData,
    DEFAULT_INTERVAL_US,
};
