//! The wall-clock stack sampler: a background thread that periodically
//! snapshots every live span stack into folded form and records a
//! counter track of backpressure state.
//!
//! Modeled on the `ute-obs` metrics sampler: one global slot, a named
//! thread parked between ticks, `stop()` joins the thread and hands the
//! accumulated [`ProfileData`] back. Starting twice is a no-op;
//! stopping when not running returns `None`. The sampler only *reads*
//! shared state (the live-stack registry, metric handles), so it never
//! perturbs pipeline ordering — the determinism guarantee
//! (byte-identical artifacts at any `--jobs`) holds with it running.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Default sampling interval: 500 µs keeps even a 100 ms stencil run
/// at a few hundred samples while staying far below 1% overhead.
pub const DEFAULT_INTERVAL_US: u64 = 500;

/// Cap on the counter-track ring; at the default interval this covers
/// several seconds of run. Older points are evicted and counted in
/// `profile/track_evicted`.
const TRACK_CAPACITY: usize = 8192;

/// Cap on distinct folded stacks; further new stacks are dropped and
/// counted in `profile/stacks_dropped` (existing stacks keep counting).
const FOLDED_CAPACITY: usize = 65536;

/// One sampler tick's view of the pipeline backpressure counters.
/// Counter values are cumulative-at-tick; the Chrome exporter renders
/// per-tick deltas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterSample {
    /// Tick time, ns since the obs epoch (same origin as span starts).
    pub at_ns: u64,
    /// Instantaneous `pipeline/queue_depth` gauge (batches in flight).
    pub queue_depth: f64,
    /// Cumulative `pipeline/blocked_sends` counter.
    pub blocked_sends: u64,
    /// Cumulative `pipeline/blocked_recvs` counter.
    pub blocked_recvs: u64,
    /// Cumulative `pipeline/send_wait_ns` histogram sum.
    pub send_wait_ns: u64,
    /// Cumulative `pipeline/recv_wait_ns` histogram sum.
    pub recv_wait_ns: u64,
}

/// Everything the sampler accumulated between `start` and `stop`.
#[derive(Debug, Clone, Default)]
pub struct ProfileData {
    /// The interval the sampler was started with, µs.
    pub interval_us: u64,
    /// First/last tick wall-clock bounds, ns since the obs epoch.
    pub started_ns: u64,
    pub stopped_ns: u64,
    /// Sampler wakeups.
    pub ticks: u64,
    /// Ticks where no thread had any open span.
    pub idle_ticks: u64,
    /// Total leaf-frame attributions (≥ active ticks when several
    /// threads are running spans at once).
    pub leaf_samples: u64,
    /// Folded stack ("outer;inner;leaf") → sample count.
    pub folded: BTreeMap<String, u64>,
    /// Leaf-frame stage → sample count: the self-time ranking input.
    pub leaf_by_stage: BTreeMap<String, u64>,
    /// The backpressure counter track, oldest first.
    pub samples: Vec<CounterSample>,
}

impl ProfileData {
    /// Mean wall-clock time between ticks, ns (0 before two ticks).
    pub fn tick_ns(&self) -> u64 {
        if self.ticks == 0 {
            return 0;
        }
        self.stopped_ns.saturating_sub(self.started_ns) / self.ticks
    }
}

/// The folded-stack file: one `stack count` line per distinct stack,
/// sorted, exactly the format `inferno-flamegraph` / `flamegraph.pl`
/// consume.
pub fn folded_output(data: &ProfileData) -> String {
    let mut out = String::new();
    for (stack, n) in &data.folded {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&n.to_string());
        out.push('\n');
    }
    out
}

struct SamplerShared {
    stop: AtomicBool,
    data: Mutex<ProfileData>,
}

struct SamplerState {
    shared: Arc<SamplerShared>,
    handle: JoinHandle<()>,
}

fn global_state() -> &'static Mutex<Option<SamplerState>> {
    static STATE: OnceLock<Mutex<Option<SamplerState>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

/// The last stopped run's counter track, kept for the Chrome-trace
/// exporter (which runs after the command that stopped the profiler).
fn last_track() -> &'static Mutex<Vec<CounterSample>> {
    static LAST: OnceLock<Mutex<Vec<CounterSample>>> = OnceLock::new();
    LAST.get_or_init(|| Mutex::new(Vec::new()))
}

/// Takes the counter track of the most recently stopped profile run.
pub fn take_track() -> Vec<CounterSample> {
    std::mem::take(&mut *last_track().lock())
}

/// Starts the background stack sampler. No-op if already running.
/// Callers normally also enable the span-side hooks with
/// `ute_obs::set_profiling(true)` — without them every sampled stack
/// is empty and only the counter track accumulates.
pub fn start(interval: Duration) {
    let mut state = global_state().lock();
    if state.is_some() {
        return;
    }
    let shared = Arc::new(SamplerShared {
        stop: AtomicBool::new(false),
        data: Mutex::new(ProfileData {
            interval_us: interval.as_micros() as u64,
            started_ns: ute_obs::span::now_ns(),
            ..ProfileData::default()
        }),
    });
    let worker = Arc::clone(&shared);
    let handle = std::thread::Builder::new()
        .name("ute-profile-sampler".into())
        .spawn(move || sampler_loop(&worker, interval))
        .expect("spawn profile sampler thread");
    *state = Some(SamplerState { shared, handle });
}

/// Whether the sampler is currently running.
pub fn running() -> bool {
    global_state().lock().is_some()
}

/// Stops the sampler, joins its thread, and returns the accumulated
/// profile. `None` when it was not running. The counter track is also
/// stashed for [`take_track`].
pub fn stop() -> Option<ProfileData> {
    let state = global_state().lock().take()?;
    state.shared.stop.store(true, Ordering::Relaxed);
    state.handle.thread().unpark();
    let _ = state.handle.join();
    let mut data = std::mem::take(&mut *state.shared.data.lock());
    data.stopped_ns = ute_obs::span::now_ns();
    *last_track().lock() = data.samples.clone();
    Some(data)
}

fn sampler_loop(shared: &SamplerShared, interval: Duration) {
    while !shared.stop.load(Ordering::Relaxed) {
        std::thread::park_timeout(interval);
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        tick(shared);
    }
}

fn tick(shared: &SamplerShared) {
    let at_ns = ute_obs::span::now_ns();
    let mut stacks_dropped = 0u64;
    let mut track_evicted = false;
    {
        let mut d = shared.data.lock();
        d.ticks += 1;
        let mut any = false;
        let mut key = String::with_capacity(96);
        ute_obs::sample_stacks(|_tid, frames| {
            if frames.is_empty() {
                return;
            }
            any = true;
            key.clear();
            for (i, frame) in frames.iter().enumerate() {
                if i > 0 {
                    key.push(';');
                }
                key.push_str(frame.name());
            }
            let leaf = frames.last().expect("non-empty stack has a leaf");
            d.leaf_samples += 1;
            *d.leaf_by_stage.entry(leaf.stage.to_string()).or_insert(0) += 1;
            if let Some(n) = d.folded.get_mut(key.as_str()) {
                *n += 1;
            } else if d.folded.len() < FOLDED_CAPACITY {
                d.folded.insert(key.clone(), 1);
            } else {
                stacks_dropped += 1;
            }
        });
        if !any {
            d.idle_ticks += 1;
        }
        let sample = CounterSample {
            at_ns,
            queue_depth: ute_obs::gauge("pipeline/queue_depth").get(),
            blocked_sends: ute_obs::counter("pipeline/blocked_sends").get(),
            blocked_recvs: ute_obs::counter("pipeline/blocked_recvs").get(),
            send_wait_ns: ute_obs::histogram("pipeline/send_wait_ns").sum(),
            recv_wait_ns: ute_obs::histogram("pipeline/recv_wait_ns").sum(),
        };
        if d.samples.len() >= TRACK_CAPACITY {
            d.samples.remove(0);
            track_evicted = true;
        }
        d.samples.push(sample);
    }
    ute_obs::counter("profile/samples").inc();
    if stacks_dropped > 0 {
        ute_obs::counter("profile/stacks_dropped").add(stacks_dropped);
    }
    if track_evicted {
        ute_obs::counter("profile/track_evicted").inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_obs::Span;

    /// The sampler slot and the profiling flag are process-global;
    /// serialize the tests that use them.
    fn test_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    #[test]
    fn samples_open_spans_into_folded_stacks() {
        let _guard = test_lock().lock();
        ute_obs::set_profiling(true);
        start(Duration::from_micros(200));
        assert!(running());
        start(Duration::from_micros(200)); // second start is a no-op
        {
            let outer = Span::enter("test-profile-sampler", "outer work");
            let _inner = Span::enter_under("test-profile-sampler", "inner work", outer.id());
            // Hold the spans open long enough for several ticks.
            let deadline = std::time::Instant::now() + Duration::from_millis(50);
            let mut acc = 0u64;
            while std::time::Instant::now() < deadline {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            std::hint::black_box(acc);
        }
        let data = stop().expect("sampler was running");
        ute_obs::set_profiling(false);
        assert!(!running());
        assert!(stop().is_none(), "second stop must be a no-op");
        assert!(data.ticks > 0, "sampler never ticked");
        assert!(
            data.folded
                .keys()
                .any(|k| k.contains("outer work;inner work")),
            "nested spans did not fold: {:?}",
            data.folded.keys().collect::<Vec<_>>()
        );
        assert!(data.leaf_by_stage.contains_key("test-profile-sampler"));
        let folded = folded_output(&data);
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("folded line shape");
            assert!(!stack.is_empty());
            assert!(count.parse::<u64>().is_ok(), "bad count in {line:?}");
        }
        assert!(!data.samples.is_empty(), "counter track is empty");
        assert!(data.samples.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert_eq!(take_track(), data.samples);
        assert!(take_track().is_empty(), "take_track must drain");
    }

    #[test]
    fn idle_ticks_are_counted_when_no_spans_open() {
        let _guard = test_lock().lock();
        // Profiling off: the registry stays empty, every tick is idle.
        start(Duration::from_micros(200));
        std::thread::sleep(Duration::from_millis(10));
        let data = stop().expect("sampler was running");
        assert!(data.ticks > 0);
        assert_eq!(
            data.idle_ticks, data.ticks,
            "with profiling off every tick must be idle"
        );
        assert_eq!(data.leaf_samples, 0);
        assert!(data.tick_ns() > 0);
    }
}
