//! # ute-cluster — the IBM SP substitute
//!
//! The paper's trace environment runs on an IBM SP: a cluster of SMP nodes
//! connected by a high-performance switch, running multi-threaded MPI
//! programs under AIX. We have no such machine, so this crate provides a
//! **deterministic discrete-event simulator** with the same observable
//! behaviour, because everything downstream (convert, merge, statistics,
//! visualization) consumes only the *event streams* the machine produces:
//!
//! * SMP nodes with a configurable number of CPUs ([`config`]);
//! * kernel-style thread scheduling with a time quantum, ready queues and
//!   free migration between the CPUs of a node — producing genuine
//!   `ThreadDispatch`/`ThreadUndispatch` records, thread migration (the
//!   paper's Figure 9) and split MPI intervals;
//! * an MPI model ([`program`], [`engine`]) where blocking receives and
//!   collectives *actually block* — descheduling the thread mid-call,
//!   which is precisely what forces the begin/continuation/end interval
//!   pieces of §1.2;
//! * a switch network with latency and bandwidth, assigning the per-send
//!   sequence numbers that let utilities match sends with receives;
//! * per-node drifting local clocks stamping every record, plus a
//!   periodic global-clock sampler cutting (G, L) records (§2.2);
//! * optional system daemon threads and system events (syscalls, page
//!   faults, I/O) mixed into the same per-node trace stream, as the AIX
//!   facility does.
//!
//! Running a [`program::JobProgram`] through [`engine::Simulator`] yields
//! one raw trace file per node plus the ground-truth thread table.

pub mod config;
pub mod engine;
pub mod program;

pub use config::{ClusterConfig, NetworkModel};
pub use engine::{SimResult, SimStats, Simulator};
pub use program::{JobProgram, Op, TaskProgram};
