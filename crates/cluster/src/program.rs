//! Program scripts executed by simulated tasks.
//!
//! A [`JobProgram`] is one [`TaskProgram`] per MPI rank; a task program is
//! one op list per thread (thread 0 is the MPI thread by convention,
//! matching the paper's sPPM setup: "There were four threads per MPI
//! process, one of which made MPI calls").

use ute_core::time::Duration;

/// One operation of a simulated thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Burn CPU for the given (ideal) duration. Subject to preemption.
    Compute(Duration),
    /// MPI_Init: loosely synchronizes all ranks at startup.
    Init,
    /// MPI_Finalize: synchronizes all ranks at shutdown.
    Finalize,
    /// Combined send+receive in one call (exchanges with two peers).
    Sendrecv {
        /// Destination rank for the outgoing message.
        to: u32,
        /// Source rank for the incoming message.
        from: u32,
        /// Payload bytes each way.
        bytes: u64,
        /// Message tag.
        tag: u32,
    },
    /// Blocking standard send.
    Send {
        /// Destination rank.
        to: u32,
        /// Payload bytes.
        bytes: u64,
        /// Message tag.
        tag: u32,
    },
    /// Blocking receive (blocks — and deschedules — until matched).
    Recv {
        /// Source rank.
        from: u32,
        /// Message tag.
        tag: u32,
    },
    /// Non-blocking send; completes immediately after local overhead.
    Isend {
        /// Destination rank.
        to: u32,
        /// Payload bytes.
        bytes: u64,
        /// Message tag.
        tag: u32,
    },
    /// Non-blocking receive post; the matching [`Op::Wait`] blocks.
    Irecv {
        /// Source rank.
        from: u32,
        /// Message tag.
        tag: u32,
    },
    /// Wait for the `n`-th outstanding request of this thread (0-based,
    /// in post order).
    Wait {
        /// Request index.
        req: u32,
    },
    /// Wait for every outstanding request of this thread.
    Waitall,
    /// Barrier over all ranks.
    Barrier,
    /// Broadcast from `root`.
    Bcast {
        /// Root rank.
        root: u32,
        /// Bytes broadcast.
        bytes: u64,
    },
    /// Reduce to `root`.
    Reduce {
        /// Root rank.
        root: u32,
        /// Bytes contributed per task.
        bytes: u64,
    },
    /// Allreduce across all ranks.
    Allreduce {
        /// Bytes per task.
        bytes: u64,
    },
    /// All-to-all personalized exchange.
    Alltoall {
        /// Bytes per peer.
        bytes: u64,
    },
    /// Gather to root.
    Gather {
        /// Root rank.
        root: u32,
        /// Bytes per task.
        bytes: u64,
    },
    /// Scatter from root.
    Scatter {
        /// Root rank.
        root: u32,
        /// Bytes per task.
        bytes: u64,
    },
    /// Allgather across ranks.
    Allgather {
        /// Bytes per task.
        bytes: u64,
    },
    /// Enter a user-marked region (string defines the marker on first use).
    MarkerBegin(String),
    /// Leave the innermost-matching user-marked region.
    MarkerEnd(String),
    /// A system call consuming CPU briefly and cutting a Syscall event.
    Syscall,
    /// A page fault (point system event plus a short stall).
    PageFault,
    /// An I/O operation of the given length (IoStart/IoEnd events; the
    /// thread blocks without consuming CPU).
    Io(Duration),
}

impl Op {
    /// Whether executing this op may block the thread (descheduling it).
    pub fn may_block(&self) -> bool {
        matches!(
            self,
            Op::Init
                | Op::Finalize
                | Op::Sendrecv { .. }
                | Op::Recv { .. }
                | Op::Wait { .. }
                | Op::Waitall
                | Op::Barrier
                | Op::Bcast { .. }
                | Op::Reduce { .. }
                | Op::Allreduce { .. }
                | Op::Alltoall { .. }
                | Op::Gather { .. }
                | Op::Scatter { .. }
                | Op::Allgather { .. }
                | Op::Io(_)
        )
    }

    /// Whether this is any MPI call.
    pub fn is_mpi(&self) -> bool {
        !matches!(
            self,
            Op::Compute(_)
                | Op::MarkerBegin(_)
                | Op::MarkerEnd(_)
                | Op::Syscall
                | Op::PageFault
                | Op::Io(_)
        )
    }
}

/// The per-thread scripts of one MPI task.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskProgram {
    /// `threads[i]` is thread `i`'s op list; thread 0 is the MPI thread.
    pub threads: Vec<Vec<Op>>,
}

impl TaskProgram {
    /// A single-threaded task running `ops`.
    pub fn single(ops: Vec<Op>) -> TaskProgram {
        TaskProgram { threads: vec![ops] }
    }

    /// A task with an MPI thread and `workers` identical worker scripts.
    pub fn with_workers(mpi_ops: Vec<Op>, worker_ops: Vec<Op>, workers: usize) -> TaskProgram {
        let mut threads = vec![mpi_ops];
        threads.extend(std::iter::repeat_n(worker_ops, workers));
        TaskProgram { threads }
    }
}

/// The whole job: one task program per rank.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobProgram {
    /// `tasks[r]` is rank `r`'s program.
    pub tasks: Vec<TaskProgram>,
}

impl JobProgram {
    /// An SPMD job: every rank runs the same program, parameterized by its
    /// rank.
    pub fn spmd(ntasks: u32, f: impl Fn(u32) -> TaskProgram) -> JobProgram {
        JobProgram {
            tasks: (0..ntasks).map(f).collect(),
        }
    }

    /// Total op count across all threads (a size proxy).
    pub fn total_ops(&self) -> usize {
        self.tasks
            .iter()
            .flat_map(|t| t.threads.iter())
            .map(|ops| ops.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_classification() {
        assert!(Op::Recv { from: 0, tag: 0 }.may_block());
        assert!(Op::Barrier.may_block());
        assert!(Op::Io(Duration::from_millis(1)).may_block());
        assert!(!Op::Send {
            to: 0,
            bytes: 10,
            tag: 0
        }
        .may_block());
        assert!(!Op::Compute(Duration::from_millis(1)).may_block());
        assert!(!Op::Isend {
            to: 0,
            bytes: 1,
            tag: 0
        }
        .may_block());
    }

    #[test]
    fn mpi_classification() {
        assert!(Op::Send {
            to: 0,
            bytes: 0,
            tag: 0
        }
        .is_mpi());
        assert!(Op::Allreduce { bytes: 8 }.is_mpi());
        assert!(!Op::Compute(Duration::ZERO).is_mpi());
        assert!(!Op::MarkerBegin("x".into()).is_mpi());
        assert!(!Op::Io(Duration::ZERO).is_mpi());
    }

    #[test]
    fn spmd_builder() {
        let job = JobProgram::spmd(4, |r| {
            TaskProgram::single(vec![Op::Compute(Duration::from_millis(r as u64 + 1))])
        });
        assert_eq!(job.tasks.len(), 4);
        assert_eq!(job.total_ops(), 4);
        assert_ne!(job.tasks[0], job.tasks[3]);
    }

    #[test]
    fn with_workers_layout() {
        let t = TaskProgram::with_workers(
            vec![Op::Barrier],
            vec![Op::Compute(Duration::from_secs(1))],
            3,
        );
        assert_eq!(t.threads.len(), 4);
        assert_eq!(t.threads[0], vec![Op::Barrier]);
        assert_eq!(t.threads[1], t.threads[3]);
    }
}
