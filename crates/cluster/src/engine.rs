//! The discrete-event simulation engine.
//!
//! One event loop drives every node's CPUs, the switch network, the
//! per-node clock samplers, and the system daemons. All trace records are
//! cut through each node's [`TraceFacility`] with timestamps read from
//! that node's *drifting local clock*, so the produced raw files exhibit
//! the clock-synchronization problem of §1.1 for real.
//!
//! Threads block inside MPI receives, waits, collectives and I/O; a
//! blocked thread is descheduled (cutting `ThreadUndispatch`), its CPU is
//! handed to the next ready thread, and when it resumes — possibly on a
//! different CPU (Figure 9's migration) — a new `ThreadDispatch` is cut.
//! The convert utility later turns those dispatch gaps into the
//! begin/continuation/end interval pieces of §1.2.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use ute_clock::drift::LocalClock;
use ute_core::error::{Result, UteError};
use ute_core::event::{EventCode, MpiOp};
use ute_core::ids::{CpuId, LogicalThreadId, NodeId, Pid, SystemThreadId, TaskId, ThreadType};
use ute_core::time::{Duration, Time};
use ute_format::thread_table::{ThreadEntry, ThreadTable};
use ute_rawtrace::facility::TraceFacility;
use ute_rawtrace::file::RawTraceFile;
use ute_rawtrace::record::MpiPayload;

use crate::config::ClusterConfig;
use crate::program::{JobProgram, Op};

/// Fixed CPU cost of entering any MPI wrapper.
const MPI_ENTRY_COST: Duration = Duration(1_000); // 1 µs
/// Fixed CPU cost of a syscall.
const SYSCALL_COST: Duration = Duration(2_000);
/// Fixed CPU cost of servicing a page fault.
const PAGE_FAULT_COST: Duration = Duration(10_000);
/// Fixed CPU cost of marker bookkeeping.
const MARKER_COST: Duration = Duration(500);

type ThreadIdx = usize;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockReason {
    /// Blocking receive waiting for (from, tag).
    Recv { from: u32, tag: u32 },
    /// Waiting on non-blocking requests.
    Wait,
    /// Inside a collective, waiting for completion.
    Collective { key: u64 },
    /// Waiting for an I/O completion.
    Io,
    /// Daemon asleep between periodic bursts.
    Sleep,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    Ready,
    Running { cpu: u16 },
    Blocked(BlockReason),
    Done,
}

#[derive(Debug, Clone)]
struct Request {
    /// For posted receives: the (from, tag) signature.
    recv_sig: Option<(u32, u32)>,
    complete: bool,
    /// Message satisfied by (for receives).
    msg: Option<usize>,
    /// Whether a Wait/Waitall is currently parked on this request.
    awaited: bool,
}

#[derive(Debug)]
struct Msg {
    src: u32,
    dst: u32,
    tag: u32,
    bytes: u64,
    seq: u64,
    consumed: bool,
}

#[derive(Debug)]
struct CollState {
    op: MpiOp,
    root: u32,
    bytes: u64,
    arrived: Vec<ThreadIdx>,
    latest: Time,
    done: bool,
}

#[derive(Debug)]
struct SimThread {
    node: u16,
    /// MPI rank, or `None` for daemons.
    rank: Option<u32>,
    logical: LogicalThreadId,
    ops: Vec<Op>,
    pc: usize,
    /// Micro-phase within the current op.
    phase: u8,
    /// Remaining CPU need of the current phase.
    need: Duration,
    state: ThreadState,
    requests: Vec<Request>,
    /// Consumed message stashed between Recv phases.
    stash_msg: Option<usize>,
    /// Outgoing sequence number stashed between Sendrecv phases.
    stash_seq: u64,
    /// Open marker local-ids (for MarkerEnd matching).
    open_markers: Vec<(String, u32)>,
    /// Per-thread count of collectives entered, for registry keying.
    coll_seq: u64,
    /// Daemon flag.
    daemon: bool,
    /// Dispatch epoch, to invalidate stale CPU timers.
    epoch: u64,
    /// CPU this thread last ran on (soft affinity).
    last_cpu: Option<u16>,
    /// CPU time consumed since this dispatch, for quantum accounting
    /// across consecutive short operations (without this a thread running
    /// many sub-quantum ops would never be preempted).
    slice_used: Duration,
    /// Wakeups since creation; every 8th placement ignores affinity,
    /// modelling AIX's periodic rebalancing (the source of Figure 9's
    /// cross-CPU migration on an underloaded SMP).
    wakes: u64,
}

#[derive(Debug, PartialEq, Eq)]
enum Ev {
    CpuTimer {
        node: u16,
        cpu: u16,
        thread: ThreadIdx,
        epoch: u64,
        completes: bool,
    },
    MsgArrive {
        msg: usize,
    },
    CollComplete {
        key: u64,
    },
    IoComplete {
        thread: ThreadIdx,
    },
    ClockSample {
        node: u16,
        k: usize,
    },
    DaemonWake {
        thread: ThreadIdx,
    },
}

/// Aggregate statistics of a simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Simulated end time of the job.
    pub end_time: Time,
    /// Raw trace records cut across all nodes.
    pub events_cut: u64,
    /// Total modelled tracing overhead across nodes.
    pub trace_overhead: Duration,
    /// Point-to-point messages delivered.
    pub messages: u64,
    /// Collective operations completed.
    pub collectives: u64,
    /// Thread dispatches performed.
    pub dispatches: u64,
}

/// The output of a run: one raw trace file per node, the ground-truth
/// thread table, and run statistics.
#[derive(Debug)]
pub struct SimResult {
    /// Per-node raw trace files, indexed by node.
    pub raw_files: Vec<RawTraceFile>,
    /// Ground-truth thread table (what the convert utility rebuilds).
    pub threads: ThreadTable,
    /// Run statistics.
    pub stats: SimStats,
}

/// The simulator.
pub struct Simulator {
    cfg: ClusterConfig,
    threads: Vec<SimThread>,
    facilities: Vec<TraceFacility>,
    clocks: Vec<LocalClock>,
    ready: Vec<VecDeque<ThreadIdx>>,
    /// `cpus[node][cpu]` = thread currently running there.
    cpus: Vec<Vec<Option<ThreadIdx>>>,
    /// Next-fit dispatch pointer per node: the search for a free CPU
    /// starts after the last one used, the way AIX's dispatcher spread
    /// wakeups across an SMP — this is what makes threads migrate
    /// between CPUs (Figure 9).
    cpu_hint: Vec<u16>,
    mailbox: Vec<Vec<usize>>,
    posted_recvs: Vec<VecDeque<(ThreadIdx, usize)>>,
    msgs: Vec<Msg>,
    colls: HashMap<u64, CollState>,
    queue: BinaryHeap<Reverse<(u64, u64, usize)>>,
    /// Scheduled events that can unblock or advance a task thread
    /// (CPU timers, message arrivals, collective/I-O completions). When
    /// this hits zero with task threads still blocked, the job is
    /// deadlocked — infrastructure events (clock samples, daemon wakes)
    /// alone can never release an MPI block.
    pending_progress: usize,
    events: Vec<Option<Ev>>,
    thread_table: ThreadTable,
    stats: SimStats,
    now: Time,
}

impl Simulator {
    /// Builds a simulator for a job on a cluster. The job must define one
    /// task program per rank ([`ClusterConfig::total_tasks`]).
    pub fn new(cfg: ClusterConfig, job: &JobProgram) -> Result<Simulator> {
        if job.tasks.len() != cfg.total_tasks() as usize {
            return Err(UteError::Invalid(format!(
                "job defines {} tasks but the cluster hosts {}",
                job.tasks.len(),
                cfg.total_tasks()
            )));
        }
        if cfg.quantum == Duration::ZERO {
            return Err(UteError::Invalid(
                "scheduler quantum must be positive".into(),
            ));
        }
        if cfg.daemons_per_node > 0
            && (cfg.daemon_period == Duration::ZERO || cfg.daemon_burst == Duration::ZERO)
        {
            return Err(UteError::Invalid(
                "daemon period and burst must be positive when daemons are configured".into(),
            ));
        }
        if cfg.cpus_per_node == 0 {
            return Err(UteError::Invalid("nodes need at least one CPU".into()));
        }
        let mut threads = Vec::new();
        let mut thread_table = ThreadTable::new();
        let mut logical_counters = vec![0u16; cfg.nodes as usize];
        for (rank, task) in job.tasks.iter().enumerate() {
            let rank = rank as u32;
            let node = cfg.node_of_rank(rank);
            if task.threads.is_empty() {
                return Err(UteError::Invalid(format!("rank {rank} has no threads")));
            }
            for (tix, ops) in task.threads.iter().enumerate() {
                let logical = LogicalThreadId(logical_counters[node as usize]);
                logical_counters[node as usize] += 1;
                let idx = threads.len();
                threads.push(SimThread {
                    node,
                    rank: Some(rank),
                    logical,
                    ops: ops.clone(),
                    pc: 0,
                    phase: 0,
                    need: Duration::ZERO,
                    state: ThreadState::Ready,
                    requests: Vec::new(),
                    stash_msg: None,
                    stash_seq: 0,
                    open_markers: Vec::new(),
                    coll_seq: 0,
                    daemon: false,
                    epoch: 0,
                    last_cpu: None,
                    slice_used: Duration::ZERO,
                    wakes: 0,
                });
                thread_table.register(ThreadEntry {
                    task: TaskId(rank),
                    pid: Pid(1000 + rank),
                    system_tid: SystemThreadId(100_000 + idx as u64),
                    node: NodeId(node),
                    logical,
                    ttype: if tix == 0 {
                        ThreadType::Mpi
                    } else {
                        ThreadType::User
                    },
                })?;
            }
        }
        // Daemon threads, one batch per node.
        for node in 0..cfg.nodes {
            for _ in 0..cfg.daemons_per_node {
                let logical = LogicalThreadId(logical_counters[node as usize]);
                logical_counters[node as usize] += 1;
                let idx = threads.len();
                threads.push(SimThread {
                    node,
                    rank: None,
                    logical,
                    ops: Vec::new(),
                    pc: 0,
                    phase: 0,
                    need: Duration::ZERO,
                    state: ThreadState::Blocked(BlockReason::Sleep),
                    requests: Vec::new(),
                    stash_msg: None,
                    stash_seq: 0,
                    open_markers: Vec::new(),
                    coll_seq: 0,
                    daemon: true,
                    epoch: 0,
                    last_cpu: None,
                    slice_used: Duration::ZERO,
                    wakes: 0,
                });
                thread_table.register(ThreadEntry {
                    task: TaskId(u32::MAX),
                    pid: Pid(1),
                    system_tid: SystemThreadId(100_000 + idx as u64),
                    node: NodeId(node),
                    logical,
                    ttype: ThreadType::System,
                })?;
            }
        }
        let facilities = (0..cfg.nodes)
            .map(|n| TraceFacility::new(NodeId(n), cfg.trace.clone()))
            .collect();
        let clocks = (0..cfg.nodes)
            .map(|n| LocalClock::new(cfg.clock_for_node(n)))
            .collect();
        let ntasks = cfg.total_tasks() as usize;
        Ok(Simulator {
            ready: vec![VecDeque::new(); cfg.nodes as usize],
            cpus: vec![vec![None; cfg.cpus_per_node as usize]; cfg.nodes as usize],
            cpu_hint: vec![0; cfg.nodes as usize],
            mailbox: vec![Vec::new(); ntasks],
            posted_recvs: vec![VecDeque::new(); ntasks],
            msgs: Vec::new(),
            colls: HashMap::new(),
            queue: BinaryHeap::new(),
            pending_progress: 0,
            events: Vec::new(),
            thread_table,
            stats: SimStats::default(),
            now: Time::ZERO,
            cfg,
            threads,
            facilities,
            clocks,
        })
    }

    fn schedule(&mut self, at: Time, ev: Ev) {
        if is_progress(&ev) {
            self.pending_progress += 1;
        }
        let id = self.events.len();
        self.events.push(Some(ev));
        self.queue.push(Reverse((at.ticks(), id as u64, id)));
    }

    fn local_now(&mut self, node: u16) -> ute_core::time::LocalTime {
        self.clocks[node as usize].read(self.now)
    }

    /// Runs the job to completion.
    pub fn run(mut self) -> Result<SimResult> {
        // Trace start + initial clock sample per node.
        for node in 0..self.cfg.nodes {
            let l = self.local_now(node);
            self.facilities[node as usize].cut_control(l, true)?;
        }
        if self.cfg.clock_sample_period > Duration::ZERO {
            for node in 0..self.cfg.nodes {
                self.schedule(Time::ZERO, Ev::ClockSample { node, k: 0 });
            }
        }
        // Daemons get their first wake.
        for t in 0..self.threads.len() {
            if self.threads[t].daemon {
                let jitter = Duration(((t as u64) * 7_919) % self.cfg.daemon_period.ticks().max(1));
                self.schedule(Time::ZERO + jitter, Ev::DaemonWake { thread: t });
            }
        }
        // Make every task thread ready and fill the CPUs.
        for t in 0..self.threads.len() {
            if !self.threads[t].daemon {
                self.make_ready(t)?;
            }
        }

        let _span = ute_obs::Span::enter("cluster", "engine run");
        let obs_events = ute_obs::counter("cluster/events_simulated");
        let obs_queue = ute_obs::gauge("cluster/queue_depth_max");
        while let Some(Reverse((at, _, id))) = self.queue.pop() {
            obs_events.inc();
            obs_queue.set_max(self.queue.len() as f64 + 1.0);
            let ev = self.events[id].take().expect("event consumed twice");
            if is_progress(&ev) {
                self.pending_progress -= 1;
            }
            self.now = Time(at);
            self.handle(ev)?;
            if self.all_tasks_done() {
                break;
            }
            if self.pending_progress == 0 {
                break; // nothing left that could ever advance a task thread
            }
        }
        if !self.all_tasks_done() {
            let stuck: Vec<String> = self
                .threads
                .iter()
                .filter(|t| !t.daemon && t.state != ThreadState::Done)
                .map(|t| {
                    format!(
                        "rank {:?} thread {} in {:?} at pc {}",
                        t.rank, t.logical, t.state, t.pc
                    )
                })
                .collect();
            return Err(UteError::Invalid(format!(
                "deadlock: event queue drained with {} thread(s) blocked: {}",
                stuck.len(),
                stuck.join("; ")
            )));
        }
        // Trace stop per node, then collect files.
        self.stats.end_time = self.now;
        for node in 0..self.cfg.nodes {
            let l = self.local_now(node);
            self.facilities[node as usize].cut_control(l, false)?;
        }
        for f in &self.facilities {
            self.stats.events_cut += f.records_cut();
            self.stats.trace_overhead += f.overhead();
        }
        ute_obs::counter("cluster/records_cut").add(self.stats.events_cut);
        ute_obs::counter("cluster/messages").add(self.stats.messages);
        ute_obs::counter("cluster/collectives").add(self.stats.collectives);
        ute_obs::counter("cluster/dispatches").add(self.stats.dispatches);
        let raw_files = self
            .facilities
            .into_iter()
            .map(|f| f.finish())
            .collect::<Result<Vec<_>>>()?;
        Ok(SimResult {
            raw_files,
            threads: self.thread_table,
            stats: self.stats,
        })
    }

    fn all_tasks_done(&self) -> bool {
        self.threads
            .iter()
            .all(|t| t.daemon || t.state == ThreadState::Done)
    }

    fn handle(&mut self, ev: Ev) -> Result<()> {
        match ev {
            Ev::CpuTimer {
                node,
                cpu,
                thread,
                epoch,
                completes,
            } => {
                if self.threads[thread].epoch != epoch
                    || self.threads[thread].state != (ThreadState::Running { cpu })
                {
                    return Ok(()); // stale timer
                }
                if completes {
                    self.threads[thread].need = Duration::ZERO;
                    self.on_phase_done(thread)?;
                } else {
                    // Quantum expiry: preempt only if someone is waiting.
                    if self.ready[node as usize].is_empty() {
                        self.threads[thread].slice_used = Duration::ZERO;
                        self.arm_timer(node, cpu, thread);
                    } else {
                        self.undispatch(thread)?;
                        self.threads[thread].state = ThreadState::Ready;
                        self.ready[node as usize].push_back(thread);
                        self.fill_cpu(node, cpu)?;
                    }
                }
            }
            Ev::MsgArrive { msg } => {
                let dst = self.msgs[msg].dst;
                self.stats.messages += 1;
                // Posted non-blocking receive?
                let sig = (self.msgs[msg].src, self.msgs[msg].tag);
                let mut matched_posted = None;
                for (qi, &(t, req)) in self.posted_recvs[dst as usize].iter().enumerate() {
                    if self.threads[t].requests[req].recv_sig == Some(sig)
                        && !self.threads[t].requests[req].complete
                    {
                        matched_posted = Some((qi, t, req));
                        break;
                    }
                }
                if let Some((qi, t, req)) = matched_posted {
                    self.posted_recvs[dst as usize].remove(qi);
                    self.msgs[msg].consumed = true;
                    let r = &mut self.threads[t].requests[req];
                    r.complete = true;
                    r.msg = Some(msg);
                    // Wake a Wait parked on this thread if now satisfied.
                    if self.threads[t].state == ThreadState::Blocked(BlockReason::Wait)
                        && self.wait_satisfied(t)
                    {
                        self.make_ready(t)?;
                    }
                    return Ok(());
                }
                self.mailbox[dst as usize].push(msg);
                // Wake one blocked Recv that matches.
                let waiter = self.threads.iter().position(|t| {
                    t.rank == Some(dst)
                        && t.state
                            == ThreadState::Blocked(BlockReason::Recv {
                                from: sig.0,
                                tag: sig.1,
                            })
                });
                if let Some(t) = waiter {
                    self.make_ready(t)?;
                }
            }
            Ev::CollComplete { key } => {
                let parts = {
                    let c = self.colls.get_mut(&key).expect("collective vanished");
                    c.done = true;
                    self.stats.collectives += 1;
                    c.arrived.clone()
                };
                for t in parts {
                    if self.threads[t].state
                        == ThreadState::Blocked(BlockReason::Collective { key })
                    {
                        self.make_ready(t)?;
                    }
                }
            }
            Ev::IoComplete { thread } => {
                if self.threads[thread].state == ThreadState::Blocked(BlockReason::Io) {
                    self.make_ready(thread)?;
                }
            }
            Ev::ClockSample { node, k } => {
                let g = self.cfg.global_clock.read(self.now);
                let delay = match self.cfg.clock_outlier_every {
                    Some(n) if n > 0 && k > 0 && k % n == 0 => self.cfg.clock_outlier_delay,
                    _ => self.cfg.global_clock.access_cost,
                };
                let l = self.clocks[node as usize].read(self.now + delay);
                self.facilities[node as usize].cut_clock(l, g)?;
                self.schedule(
                    self.now + self.cfg.clock_sample_period,
                    Ev::ClockSample { node, k: k + 1 },
                );
            }
            Ev::DaemonWake { thread } => {
                if self.threads[thread].state == ThreadState::Blocked(BlockReason::Sleep) {
                    self.threads[thread].need = self.cfg.daemon_burst;
                    self.make_ready(thread)?;
                }
            }
        }
        Ok(())
    }

    /// Marks a thread runnable and dispatches it if a CPU is free.
    ///
    /// Placement models AIX's SMP dispatcher: task threads have *soft
    /// affinity* — they return to the CPU they last ran on when it is
    /// free — and fall back to a next-fit scan from a rotating per-node
    /// pointer when it is not. Daemons have no affinity and roam via the
    /// next-fit pointer. The combination keeps most CPUs idle (Figure 9)
    /// while still producing the occasional cross-CPU migration when a
    /// thread wakes to find its old CPU taken.
    fn make_ready(&mut self, t: ThreadIdx) -> Result<()> {
        self.threads[t].state = ThreadState::Ready;
        let node = self.threads[t].node;
        self.threads[t].wakes += 1;
        let rebalance = self.threads[t].wakes.is_multiple_of(8);
        let affinity = if self.threads[t].daemon || rebalance {
            None
        } else {
            self.threads[t].last_cpu
        };
        if let Some(cpu) = affinity {
            if self.cpus[node as usize][cpu as usize].is_none() {
                return self.dispatch(node, cpu, t);
            }
        }
        let ncpu = self.cpus[node as usize].len() as u16;
        let hint = self.cpu_hint[node as usize];
        let free = (0..ncpu)
            .map(|i| (hint + i) % ncpu)
            .find(|&c| self.cpus[node as usize][c as usize].is_none());
        if let Some(cpu) = free {
            self.cpu_hint[node as usize] = (cpu + 1) % ncpu;
            self.dispatch(node, cpu, t)
        } else {
            self.ready[node as usize].push_back(t);
            Ok(())
        }
    }

    fn dispatch(&mut self, node: u16, cpu: u16, t: ThreadIdx) -> Result<()> {
        debug_assert_eq!(self.threads[t].state, ThreadState::Ready);
        self.cpus[node as usize][cpu as usize] = Some(t);
        self.threads[t].state = ThreadState::Running { cpu };
        self.threads[t].last_cpu = Some(cpu);
        self.threads[t].slice_used = Duration::ZERO;
        self.threads[t].epoch += 1;
        self.stats.dispatches += 1;
        let l = self.local_now(node);
        self.facilities[node as usize].cut_dispatch(
            l,
            self.threads[t].logical,
            CpuId(cpu),
            true,
        )?;
        // If the thread has no pending CPU need, advance its script now to
        // find the next need (cuts zero-time events at this instant).
        if self.threads[t].need == Duration::ZERO {
            self.advance(t)?;
        } else {
            self.arm_timer(node, cpu, t);
        }
        Ok(())
    }

    fn undispatch(&mut self, t: ThreadIdx) -> Result<()> {
        if let ThreadState::Running { cpu } = self.threads[t].state {
            let node = self.threads[t].node;
            self.cpus[node as usize][cpu as usize] = None;
            let l = self.local_now(node);
            self.facilities[node as usize].cut_dispatch(
                l,
                self.threads[t].logical,
                CpuId(cpu),
                false,
            )?;
            self.threads[t].epoch += 1;
        }
        Ok(())
    }

    fn fill_cpu(&mut self, node: u16, cpu: u16) -> Result<()> {
        if self.cpus[node as usize][cpu as usize].is_some() {
            return Ok(());
        }
        if let Some(t) = self.ready[node as usize].pop_front() {
            self.dispatch(node, cpu, t)?;
        }
        Ok(())
    }

    fn arm_timer(&mut self, node: u16, cpu: u16, t: ThreadIdx) {
        let mut budget = self.cfg.quantum.saturating_sub(self.threads[t].slice_used);
        if budget == Duration::ZERO {
            // Quantum exhausted across consecutive short ops.
            if self.ready[node as usize].is_empty() {
                // Nobody waiting: renew the quantum in place.
                self.threads[t].slice_used = Duration::ZERO;
                budget = self.cfg.quantum;
            } else {
                // Route through the normal preemption path immediately.
                let epoch = self.threads[t].epoch;
                self.schedule(
                    self.now,
                    Ev::CpuTimer {
                        node,
                        cpu,
                        thread: t,
                        epoch,
                        completes: false,
                    },
                );
                return;
            }
        }
        let need = self.threads[t].need;
        let slice = need.min(budget);
        let completes = slice >= need;
        // Remaining need shrinks by the slice we are about to run; the
        // quantum budget shrinks likewise.
        self.threads[t].need = need.saturating_sub(slice);
        self.threads[t].slice_used += slice;
        let at = self.now + self.cfg.ctx_switch + slice;
        let epoch = self.threads[t].epoch;
        self.schedule(
            at,
            Ev::CpuTimer {
                node,
                cpu,
                thread: t,
                epoch,
                completes,
            },
        );
    }

    /// Gives a running thread CPU work: arms the slice timer.
    fn demand_cpu(&mut self, t: ThreadIdx, d: Duration) {
        self.threads[t].need = d;
        if let ThreadState::Running { cpu } = self.threads[t].state {
            let node = self.threads[t].node;
            self.arm_timer(node, cpu, t);
        } else {
            unreachable!("demand_cpu on non-running thread");
        }
    }

    /// Blocks a running thread: undispatch, free the CPU, refill it.
    fn block(&mut self, t: ThreadIdx, why: BlockReason) -> Result<()> {
        let ThreadState::Running { cpu } = self.threads[t].state else {
            unreachable!("block on non-running thread");
        };
        let node = self.threads[t].node;
        self.undispatch(t)?;
        self.threads[t].state = ThreadState::Blocked(why);
        self.fill_cpu(node, cpu)
    }

    fn finish_thread(&mut self, t: ThreadIdx) -> Result<()> {
        let ThreadState::Running { cpu } = self.threads[t].state else {
            unreachable!("finish on non-running thread");
        };
        let node = self.threads[t].node;
        self.undispatch(t)?;
        self.threads[t].state = ThreadState::Done;
        self.fill_cpu(node, cpu)
    }

    fn wait_satisfied(&self, t: ThreadIdx) -> bool {
        self.threads[t]
            .requests
            .iter()
            .filter(|r| r.awaited)
            .all(|r| r.complete)
    }

    fn mpi_payload(&self, t: ThreadIdx) -> MpiPayload {
        MpiPayload::bare(self.threads[t].logical, self.threads[t].rank.unwrap_or(0))
    }

    fn cut_mpi(
        &mut self,
        t: ThreadIdx,
        op: MpiOp,
        begin: bool,
        mut payload: MpiPayload,
    ) -> Result<()> {
        if payload.address == 0 {
            // Synthetic call-site address, "suitable for a source code
            // browser" (§2.3.2): one stable address per routine.
            payload.address = 0x0040_0000 + ((op.code() as u64) << 6);
        }
        let node = self.threads[t].node;
        let l = self.local_now(node);
        self.facilities[node as usize].cut_mpi(l, op, begin, payload)?;
        Ok(())
    }

    /// The phase the thread was burning CPU for has finished; perform its
    /// completion action and advance the script.
    fn on_phase_done(&mut self, t: ThreadIdx) -> Result<()> {
        self.advance(t)
    }

    /// Drives a *running* thread's script forward. Cuts events for
    /// zero-time steps at the current instant and stops as soon as the
    /// thread needs CPU (arming its timer), blocks, or finishes.
    fn advance(&mut self, t: ThreadIdx) -> Result<()> {
        loop {
            // Daemon threads run a fixed burst instead of a script.
            if self.threads[t].daemon {
                match self.threads[t].phase {
                    0 => {
                        self.threads[t].phase = 1;
                        let d = self.threads[t].need.max(self.cfg.daemon_burst);
                        self.demand_cpu(t, d);
                        return Ok(());
                    }
                    _ => {
                        let node = self.threads[t].node;
                        let l = self.local_now(node);
                        let logical = self.threads[t].logical;
                        self.facilities[node as usize].cut_system(
                            l,
                            EventCode::Interrupt,
                            logical,
                        )?;
                        self.threads[t].phase = 0;
                        self.threads[t].need = Duration::ZERO;
                        let next = self.now + self.cfg.daemon_period;
                        self.schedule(next, Ev::DaemonWake { thread: t });
                        let ThreadState::Running { cpu } = self.threads[t].state else {
                            unreachable!()
                        };
                        let node = self.threads[t].node;
                        self.undispatch(t)?;
                        self.threads[t].state = ThreadState::Blocked(BlockReason::Sleep);
                        self.fill_cpu(node, cpu)?;
                        return Ok(());
                    }
                }
            }

            let pc = self.threads[t].pc;
            if pc >= self.threads[t].ops.len() {
                return self.finish_thread(t);
            }
            let op = self.threads[t].ops[pc].clone();
            let phase = self.threads[t].phase;
            match (&op, phase) {
                (Op::Compute(d), 0) => {
                    self.threads[t].phase = 1;
                    self.demand_cpu(t, *d);
                    return Ok(());
                }
                (Op::Compute(_), _) => {
                    self.step_pc(t);
                }

                (Op::Sendrecv { bytes, .. }, 0) => {
                    self.cut_mpi(t, MpiOp::Sendrecv, true, self.mpi_payload(t))?;
                    self.threads[t].phase = 1;
                    let d = MPI_ENTRY_COST + self.cfg.network.send_time(*bytes);
                    self.demand_cpu(t, d);
                    return Ok(());
                }
                (Op::Sendrecv { to, bytes, tag, .. }, 1) => {
                    let seq = self.post_message(t, *to, *bytes, *tag);
                    self.threads[t].stash_seq = seq;
                    self.threads[t].phase = 2;
                    // fall through to the receive attempt on the next spin
                }
                (Op::Sendrecv { from, tag, .. }, 2) => {
                    let rank = self.threads[t].rank.expect("sendrecv on daemon");
                    if let Some(m) = self.take_from_mailbox(rank, *from, *tag) {
                        self.threads[t].stash_msg = Some(m);
                        self.threads[t].phase = 3;
                        let d = self.cfg.network.overhead
                            + Duration(
                                self.cfg.network.transfer_time(self.msgs[m].bytes).ticks() / 4,
                            );
                        self.demand_cpu(t, d);
                        return Ok(());
                    }
                    return self.block(
                        t,
                        BlockReason::Recv {
                            from: *from,
                            tag: *tag,
                        },
                    );
                }
                (Op::Sendrecv { to, bytes, tag, .. }, _) => {
                    // The receive phase only advances here after a message
                    // was stashed; its absence means the engine's own
                    // bookkeeping broke, which must surface as an error,
                    // not a panic inside a long simulation.
                    let Some(m) = self.threads[t].stash_msg.take() else {
                        return Err(UteError::Invalid(format!(
                            "sendrecv on thread {t} completed without a matched message"
                        )));
                    };
                    let mut p = self.mpi_payload(t);
                    p.peer = *to;
                    p.tag = *tag;
                    p.bytes = *bytes;
                    // The record's sequence number is the outgoing one; the
                    // incoming message's own seq matched it to our mailbox.
                    p.seq = self.threads[t].stash_seq;
                    let _ = self.msgs[m].bytes;
                    self.cut_mpi(t, MpiOp::Sendrecv, false, p)?;
                    self.step_pc(t);
                }

                (Op::Send { bytes, .. }, 0) => {
                    self.cut_mpi(t, MpiOp::Send, true, self.mpi_payload(t))?;
                    self.threads[t].phase = 1;
                    let d = MPI_ENTRY_COST + self.cfg.network.send_time(*bytes);
                    self.demand_cpu(t, d);
                    return Ok(());
                }
                (Op::Send { to, bytes, tag }, _) => {
                    let seq = self.post_message(t, *to, *bytes, *tag);
                    let mut p = self.mpi_payload(t);
                    p.peer = *to;
                    p.tag = *tag;
                    p.bytes = *bytes;
                    p.seq = seq;
                    self.cut_mpi(t, MpiOp::Send, false, p)?;
                    self.step_pc(t);
                }

                (Op::Isend { bytes, .. }, 0) => {
                    self.cut_mpi(t, MpiOp::Isend, true, self.mpi_payload(t))?;
                    self.threads[t].phase = 1;
                    let d = MPI_ENTRY_COST + self.cfg.network.send_time(*bytes);
                    self.demand_cpu(t, d);
                    return Ok(());
                }
                (Op::Isend { to, bytes, tag }, _) => {
                    let seq = self.post_message(t, *to, *bytes, *tag);
                    self.threads[t].requests.push(Request {
                        recv_sig: None,
                        complete: true,
                        msg: None,
                        awaited: false,
                    });
                    let mut p = self.mpi_payload(t);
                    p.peer = *to;
                    p.tag = *tag;
                    p.bytes = *bytes;
                    p.seq = seq;
                    self.cut_mpi(t, MpiOp::Isend, false, p)?;
                    self.step_pc(t);
                }

                (Op::Irecv { .. }, 0) => {
                    self.cut_mpi(t, MpiOp::Irecv, true, self.mpi_payload(t))?;
                    self.threads[t].phase = 1;
                    self.demand_cpu(t, MPI_ENTRY_COST);
                    return Ok(());
                }
                (Op::Irecv { from, tag }, _) => {
                    let rank = self.threads[t].rank.expect("irecv on daemon");
                    let req = self.threads[t].requests.len();
                    self.threads[t].requests.push(Request {
                        recv_sig: Some((*from, *tag)),
                        complete: false,
                        msg: None,
                        awaited: false,
                    });
                    // Match an already-arrived message if present.
                    if let Some(m) = self.take_from_mailbox(rank, *from, *tag) {
                        let r = &mut self.threads[t].requests[req];
                        r.complete = true;
                        r.msg = Some(m);
                    } else {
                        self.posted_recvs[rank as usize].push_back((t, req));
                    }
                    let mut p = self.mpi_payload(t);
                    p.peer = *from;
                    p.tag = *tag;
                    self.cut_mpi(t, MpiOp::Irecv, false, p)?;
                    self.step_pc(t);
                }

                (Op::Recv { .. }, 0) => {
                    self.cut_mpi(t, MpiOp::Recv, true, self.mpi_payload(t))?;
                    self.threads[t].phase = 1;
                    self.demand_cpu(t, MPI_ENTRY_COST);
                    return Ok(());
                }
                (Op::Recv { from, tag }, 1) => {
                    let rank = self.threads[t].rank.expect("recv on daemon");
                    if let Some(m) = self.take_from_mailbox(rank, *from, *tag) {
                        self.threads[t].stash_msg = Some(m);
                        self.threads[t].phase = 2;
                        // Copy cost proportional to message size.
                        let d = self.cfg.network.overhead
                            + Duration(
                                self.cfg.network.transfer_time(self.msgs[m].bytes).ticks() / 4,
                            );
                        self.demand_cpu(t, d);
                        return Ok(());
                    }
                    return self.block(
                        t,
                        BlockReason::Recv {
                            from: *from,
                            tag: *tag,
                        },
                    );
                }
                (Op::Recv { from, tag }, _) => {
                    let Some(m) = self.threads[t].stash_msg.take() else {
                        return Err(UteError::Invalid(format!(
                            "recv on thread {t} completed without a matched message"
                        )));
                    };
                    let mut p = self.mpi_payload(t);
                    p.peer = *from;
                    p.tag = *tag;
                    p.bytes = self.msgs[m].bytes;
                    p.seq = self.msgs[m].seq;
                    self.cut_mpi(t, MpiOp::Recv, false, p)?;
                    self.step_pc(t);
                }

                (Op::Wait { .. } | Op::Waitall, 0) => {
                    let op_kind = if matches!(op, Op::Waitall) {
                        MpiOp::Waitall
                    } else {
                        MpiOp::Wait
                    };
                    self.cut_mpi(t, op_kind, true, self.mpi_payload(t))?;
                    self.threads[t].phase = 1;
                    self.demand_cpu(t, MPI_ENTRY_COST);
                    return Ok(());
                }
                (Op::Wait { req }, 1) => {
                    let ri = *req as usize;
                    if ri >= self.threads[t].requests.len() {
                        return Err(UteError::Invalid(format!(
                            "Wait on request {ri} but only {} posted",
                            self.threads[t].requests.len()
                        )));
                    }
                    for r in &mut self.threads[t].requests {
                        r.awaited = false;
                    }
                    self.threads[t].requests[ri].awaited = true;
                    if self.threads[t].requests[ri].complete {
                        self.threads[t].phase = 2;
                        continue;
                    }
                    return self.block(t, BlockReason::Wait);
                }
                (Op::Waitall, 1) => {
                    for r in &mut self.threads[t].requests {
                        r.awaited = true;
                    }
                    if self.wait_satisfied(t) {
                        self.threads[t].phase = 2;
                        continue;
                    }
                    return self.block(t, BlockReason::Wait);
                }
                (Op::Wait { req }, _) => {
                    let ri = *req as usize;
                    let mut p = self.mpi_payload(t);
                    if let Some(m) = self.threads[t].requests[ri].msg {
                        p.bytes = self.msgs[m].bytes;
                        p.seq = self.msgs[m].seq;
                        p.peer = self.msgs[m].src;
                        p.tag = self.msgs[m].tag;
                    }
                    self.cut_mpi(t, MpiOp::Wait, false, p)?;
                    self.step_pc(t);
                }
                (Op::Waitall, _) => {
                    self.cut_mpi(t, MpiOp::Waitall, false, self.mpi_payload(t))?;
                    self.threads[t].requests.clear();
                    self.posted_recvs
                        .iter_mut()
                        .for_each(|q| q.retain(|&(ti, _)| ti != t));
                    self.step_pc(t);
                }

                (
                    Op::Init
                    | Op::Finalize
                    | Op::Barrier
                    | Op::Bcast { .. }
                    | Op::Reduce { .. }
                    | Op::Allreduce { .. }
                    | Op::Alltoall { .. }
                    | Op::Gather { .. }
                    | Op::Scatter { .. }
                    | Op::Allgather { .. },
                    0,
                ) => {
                    let (mpi_op, _, _) = collective_parts(&op);
                    self.cut_mpi(t, mpi_op, true, self.mpi_payload(t))?;
                    self.threads[t].phase = 1;
                    self.demand_cpu(t, MPI_ENTRY_COST);
                    return Ok(());
                }
                (
                    Op::Init
                    | Op::Finalize
                    | Op::Barrier
                    | Op::Bcast { .. }
                    | Op::Reduce { .. }
                    | Op::Allreduce { .. }
                    | Op::Alltoall { .. }
                    | Op::Gather { .. }
                    | Op::Scatter { .. }
                    | Op::Allgather { .. },
                    1,
                ) => {
                    return self.enter_collective(t, &op);
                }
                (
                    Op::Init
                    | Op::Finalize
                    | Op::Barrier
                    | Op::Bcast { .. }
                    | Op::Reduce { .. }
                    | Op::Allreduce { .. }
                    | Op::Alltoall { .. }
                    | Op::Gather { .. }
                    | Op::Scatter { .. }
                    | Op::Allgather { .. },
                    _,
                ) => {
                    let (mpi_op, root, bytes) = collective_parts(&op);
                    let mut p = self.mpi_payload(t);
                    p.peer = root;
                    p.bytes = bytes;
                    self.cut_mpi(t, mpi_op, false, p)?;
                    self.step_pc(t);
                }

                (Op::MarkerBegin(name), _) => {
                    let node = self.threads[t].node;
                    let rank = self.threads[t].rank.unwrap_or(u32::MAX);
                    let l = self.local_now(node);
                    let id = self.facilities[node as usize].define_marker(l, rank, name)?;
                    let logical = self.threads[t].logical;
                    let l = self.local_now(node);
                    self.facilities[node as usize].cut_marker(
                        l,
                        logical,
                        id,
                        0x4000 + id as u64,
                        true,
                    )?;
                    self.threads[t].open_markers.push((name.clone(), id));
                    self.threads[t].phase = 1;
                    self.step_pc(t);
                    self.demand_cpu(t, MARKER_COST);
                    return Ok(());
                }
                (Op::MarkerEnd(name), _) => {
                    let pos = self.threads[t]
                        .open_markers
                        .iter()
                        .rposition(|(n, _)| n == name)
                        .ok_or_else(|| {
                            UteError::Invalid(format!("MarkerEnd(\"{name}\") without begin"))
                        })?;
                    let (_, id) = self.threads[t].open_markers.remove(pos);
                    let node = self.threads[t].node;
                    let logical = self.threads[t].logical;
                    let l = self.local_now(node);
                    self.facilities[node as usize].cut_marker(
                        l,
                        logical,
                        id,
                        0x8000 + id as u64,
                        false,
                    )?;
                    self.threads[t].phase = 1;
                    self.step_pc(t);
                    self.demand_cpu(t, MARKER_COST);
                    return Ok(());
                }

                (Op::Syscall, _) => {
                    let node = self.threads[t].node;
                    let logical = self.threads[t].logical;
                    let l = self.local_now(node);
                    self.facilities[node as usize].cut_system(l, EventCode::Syscall, logical)?;
                    self.threads[t].phase = 1;
                    self.step_pc(t);
                    self.demand_cpu(t, SYSCALL_COST);
                    return Ok(());
                }
                (Op::PageFault, _) => {
                    let node = self.threads[t].node;
                    let logical = self.threads[t].logical;
                    let l = self.local_now(node);
                    self.facilities[node as usize].cut_system(l, EventCode::PageFault, logical)?;
                    self.threads[t].phase = 1;
                    self.step_pc(t);
                    self.demand_cpu(t, PAGE_FAULT_COST);
                    return Ok(());
                }

                (Op::Io(d), 0) => {
                    let node = self.threads[t].node;
                    let logical = self.threads[t].logical;
                    let l = self.local_now(node);
                    self.facilities[node as usize].cut_system(l, EventCode::IoStart, logical)?;
                    self.threads[t].phase = 1;
                    self.schedule(self.now + *d, Ev::IoComplete { thread: t });
                    return self.block(t, BlockReason::Io);
                }
                (Op::Io(_), _) => {
                    let node = self.threads[t].node;
                    let logical = self.threads[t].logical;
                    let l = self.local_now(node);
                    self.facilities[node as usize].cut_system(l, EventCode::IoEnd, logical)?;
                    self.step_pc(t);
                }
            }
        }
    }

    fn step_pc(&mut self, t: ThreadIdx) {
        self.threads[t].pc += 1;
        self.threads[t].phase = 0;
    }

    fn post_message(&mut self, t: ThreadIdx, to: u32, bytes: u64, tag: u32) -> u64 {
        let rank = self.threads[t].rank.expect("send from daemon");
        let node = self.threads[t].node;
        let seq = self.facilities[node as usize].next_seq(rank);
        let msg = self.msgs.len();
        self.msgs.push(Msg {
            src: rank,
            dst: to,
            tag,
            bytes,
            seq,
            consumed: false,
        });
        let arrive = self.now + self.cfg.network.latency;
        self.schedule(arrive, Ev::MsgArrive { msg });
        seq
    }

    fn take_from_mailbox(&mut self, rank: u32, from: u32, tag: u32) -> Option<usize> {
        let q = &mut self.mailbox[rank as usize];
        let pos = q.iter().position(|&m| {
            !self.msgs[m].consumed && self.msgs[m].src == from && self.msgs[m].tag == tag
        })?;
        let m = q.remove(pos);
        self.msgs[m].consumed = true;
        Some(m)
    }

    fn enter_collective(&mut self, t: ThreadIdx, op: &Op) -> Result<()> {
        let (mpi_op, root, bytes) = collective_parts(op);
        let key = self.threads[t].coll_seq;
        self.threads[t].coll_seq += 1;
        let ntasks = self.cfg.total_tasks();
        let now = self.now;
        let entry = self.colls.entry(key).or_insert_with(|| CollState {
            op: mpi_op,
            root,
            bytes,
            arrived: Vec::new(),
            latest: now,
            done: false,
        });
        if entry.op != mpi_op || entry.root != root || entry.bytes != bytes {
            return Err(UteError::Invalid(format!(
                "collective mismatch at index {key}: {:?} root {} ({} B) vs {:?} root {} ({} B)",
                entry.op, entry.root, entry.bytes, mpi_op, root, bytes
            )));
        }
        entry.arrived.push(t);
        entry.latest = entry.latest.max(now);
        self.threads[t].phase = 2;
        if entry.arrived.len() == ntasks as usize {
            let done_at = entry.latest + self.cfg.network.collective_time(ntasks, bytes);
            self.schedule(done_at, Ev::CollComplete { key });
        }
        self.block(t, BlockReason::Collective { key })
    }
}

fn is_progress(ev: &Ev) -> bool {
    matches!(
        ev,
        Ev::CpuTimer { .. }
            | Ev::MsgArrive { .. }
            | Ev::CollComplete { .. }
            | Ev::IoComplete { .. }
    )
}

fn collective_parts(op: &Op) -> (MpiOp, u32, u64) {
    match op {
        Op::Init => (MpiOp::Init, u32::MAX, 0),
        Op::Finalize => (MpiOp::Finalize, u32::MAX, 0),
        Op::Barrier => (MpiOp::Barrier, u32::MAX, 0),
        Op::Bcast { root, bytes } => (MpiOp::Bcast, *root, *bytes),
        Op::Reduce { root, bytes } => (MpiOp::Reduce, *root, *bytes),
        Op::Allreduce { bytes } => (MpiOp::Allreduce, u32::MAX, *bytes),
        Op::Alltoall { bytes } => (MpiOp::Alltoall, u32::MAX, *bytes),
        Op::Gather { root, bytes } => (MpiOp::Gather, *root, *bytes),
        Op::Scatter { root, bytes } => (MpiOp::Scatter, *root, *bytes),
        Op::Allgather { bytes } => (MpiOp::Allgather, u32::MAX, *bytes),
        other => unreachable!("not a collective: {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::TaskProgram;
    use ute_rawtrace::record::{DispatchPayload, MpiPayload as MP};

    fn small_cfg() -> ClusterConfig {
        ClusterConfig {
            nodes: 2,
            cpus_per_node: 2,
            tasks_per_node: 1,
            threads_per_task: 1,
            daemons_per_node: 0,
            clock_sample_period: Duration::from_millis(100),
            ..ClusterConfig::default()
        }
    }

    fn run(cfg: ClusterConfig, job: JobProgram) -> SimResult {
        Simulator::new(cfg, &job).unwrap().run().unwrap()
    }

    fn events_of(res: &SimResult, node: u16, code: EventCode) -> usize {
        res.raw_files[node as usize]
            .events
            .iter()
            .filter(|e| e.code == code)
            .count()
    }

    #[test]
    fn ping_pong_matches_sends_and_recvs() {
        let job = JobProgram {
            tasks: vec![
                TaskProgram::single(vec![
                    Op::Send {
                        to: 1,
                        bytes: 4096,
                        tag: 7,
                    },
                    Op::Recv { from: 1, tag: 8 },
                ]),
                TaskProgram::single(vec![
                    Op::Recv { from: 0, tag: 7 },
                    Op::Send {
                        to: 0,
                        bytes: 4096,
                        tag: 8,
                    },
                ]),
            ],
        };
        let res = run(small_cfg(), job);
        assert_eq!(res.stats.messages, 2);
        // Each node has exactly one Send begin+end and one Recv begin+end.
        for node in 0..2 {
            assert_eq!(events_of(&res, node, EventCode::MpiBegin(MpiOp::Send)), 1);
            assert_eq!(events_of(&res, node, EventCode::MpiEnd(MpiOp::Send)), 1);
            assert_eq!(events_of(&res, node, EventCode::MpiBegin(MpiOp::Recv)), 1);
            assert_eq!(events_of(&res, node, EventCode::MpiEnd(MpiOp::Recv)), 1);
        }
        // Seq number on recv end matches the seq on the peer's send end.
        let send_end = res.raw_files[0]
            .events
            .iter()
            .find(|e| e.code == EventCode::MpiEnd(MpiOp::Send))
            .unwrap();
        let recv_end = res.raw_files[1]
            .events
            .iter()
            .find(|e| e.code == EventCode::MpiEnd(MpiOp::Recv))
            .unwrap();
        let sp = MP::from_bytes(&send_end.payload).unwrap();
        let rp = MP::from_bytes(&recv_end.payload).unwrap();
        assert_eq!(sp.seq, rp.seq);
        assert_eq!(sp.bytes, 4096);
        assert_eq!(rp.bytes, 4096);
        assert_eq!(rp.peer, 0);
    }

    #[test]
    fn blocking_recv_deschedules_thread() {
        // Rank 1's recv must block (sender computes for 50 ms first), so
        // node 1's trace must contain an undispatch before the recv end.
        let job = JobProgram {
            tasks: vec![
                TaskProgram::single(vec![
                    Op::Compute(Duration::from_millis(50)),
                    Op::Send {
                        to: 1,
                        bytes: 1024,
                        tag: 0,
                    },
                ]),
                TaskProgram::single(vec![Op::Recv { from: 0, tag: 0 }]),
            ],
        };
        let res = run(small_cfg(), job);
        let f = &res.raw_files[1];
        let recv_begin = f
            .events
            .iter()
            .position(|e| e.code == EventCode::MpiBegin(MpiOp::Recv))
            .unwrap();
        let recv_end = f
            .events
            .iter()
            .position(|e| e.code == EventCode::MpiEnd(MpiOp::Recv))
            .unwrap();
        let undispatch_between = f.events[recv_begin..recv_end]
            .iter()
            .any(|e| e.code == EventCode::ThreadUndispatch);
        assert!(
            undispatch_between,
            "blocking recv should deschedule the thread mid-call"
        );
    }

    #[test]
    fn barrier_synchronizes_all_ranks() {
        let cfg = ClusterConfig {
            nodes: 2,
            tasks_per_node: 2,
            ..small_cfg()
        };
        let job = JobProgram::spmd(4, |r| {
            TaskProgram::single(vec![
                Op::Compute(Duration::from_millis(r as u64 * 10)),
                Op::Barrier,
                Op::Compute(Duration::from_millis(1)),
            ])
        });
        let res = run(cfg, job);
        assert_eq!(res.stats.collectives, 1);
        // Barrier end events exist on both nodes.
        for node in 0..2 {
            assert_eq!(events_of(&res, node, EventCode::MpiEnd(MpiOp::Barrier)), 2);
        }
        // End time is at least the slowest rank's pre-barrier compute.
        assert!(res.stats.end_time >= Time(30_000_000));
    }

    #[test]
    fn collective_mismatch_is_detected() {
        let job = JobProgram {
            tasks: vec![
                TaskProgram::single(vec![Op::Barrier]),
                TaskProgram::single(vec![Op::Allreduce { bytes: 8 }]),
            ],
        };
        let err = Simulator::new(small_cfg(), &job)
            .unwrap()
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("collective mismatch"), "{err}");
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        let job = JobProgram {
            tasks: vec![
                TaskProgram::single(vec![Op::Recv { from: 1, tag: 0 }]),
                TaskProgram::single(vec![Op::Recv { from: 0, tag: 0 }]),
            ],
        };
        let err = Simulator::new(small_cfg(), &job)
            .unwrap()
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("deadlock"), "{err}");
    }

    #[test]
    fn isend_irecv_wait_complete() {
        let job = JobProgram {
            tasks: vec![
                TaskProgram::single(vec![
                    Op::Irecv { from: 1, tag: 5 },
                    Op::Isend {
                        to: 1,
                        bytes: 2048,
                        tag: 4,
                    },
                    Op::Waitall,
                ]),
                TaskProgram::single(vec![
                    Op::Irecv { from: 0, tag: 4 },
                    Op::Isend {
                        to: 0,
                        bytes: 2048,
                        tag: 5,
                    },
                    Op::Waitall,
                ]),
            ],
        };
        let res = run(small_cfg(), job);
        assert_eq!(res.stats.messages, 2);
        for node in 0..2 {
            assert_eq!(events_of(&res, node, EventCode::MpiEnd(MpiOp::Waitall)), 1);
        }
    }

    #[test]
    fn quantum_preemption_round_robins_threads() {
        // One CPU, two compute-bound threads: they must alternate, cutting
        // many dispatch records.
        let cfg = ClusterConfig {
            nodes: 1,
            cpus_per_node: 1,
            tasks_per_node: 1,
            threads_per_task: 2,
            quantum: Duration::from_millis(5),
            daemons_per_node: 0,
            clock_sample_period: Duration::ZERO,
            ..ClusterConfig::default()
        };
        let job = JobProgram {
            tasks: vec![TaskProgram {
                threads: vec![
                    vec![Op::Compute(Duration::from_millis(50))],
                    vec![Op::Compute(Duration::from_millis(50))],
                ],
            }],
        };
        let res = run(cfg, job);
        let dispatches = events_of(&res, 0, EventCode::ThreadDispatch);
        // 100 ms total work at 5 ms quantum ⇒ ~20 slices.
        assert!(
            dispatches >= 15,
            "expected preemption churn, got {dispatches}"
        );
        // Both threads appear in dispatch records.
        let mut seen = std::collections::HashSet::new();
        for e in &res.raw_files[0].events {
            if e.code == EventCode::ThreadDispatch {
                seen.insert(DispatchPayload::from_bytes(&e.payload).unwrap().thread);
            }
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn threads_migrate_across_cpus() {
        // More threads than CPUs and frequent blocking: a thread should
        // eventually be dispatched on different CPUs (Figure 9).
        let cfg = ClusterConfig {
            nodes: 1,
            cpus_per_node: 2,
            tasks_per_node: 3,
            threads_per_task: 1,
            quantum: Duration::from_millis(2),
            daemons_per_node: 0,
            clock_sample_period: Duration::ZERO,
            ..ClusterConfig::default()
        };
        let ops: Vec<Op> = (0..20)
            .flat_map(|_| vec![Op::Compute(Duration::from_millis(3)), Op::Barrier])
            .collect();
        let job = JobProgram::spmd(3, |_| TaskProgram::single(ops.clone()));
        let res = run(cfg, job);
        let mut cpus_of_thread: HashMap<u16, std::collections::HashSet<u16>> = HashMap::new();
        for e in &res.raw_files[0].events {
            if e.code == EventCode::ThreadDispatch {
                let p = DispatchPayload::from_bytes(&e.payload).unwrap();
                cpus_of_thread
                    .entry(p.thread.raw())
                    .or_default()
                    .insert(p.cpu.raw());
            }
        }
        assert!(
            cpus_of_thread.values().any(|s| s.len() > 1),
            "expected at least one thread to run on multiple CPUs: {cpus_of_thread:?}"
        );
    }

    #[test]
    fn clock_records_cut_periodically_on_every_node() {
        let cfg = ClusterConfig {
            clock_sample_period: Duration::from_millis(20),
            ..small_cfg()
        };
        let job = JobProgram::spmd(2, |_| {
            TaskProgram::single(vec![Op::Compute(Duration::from_millis(100))])
        });
        let res = run(cfg, job);
        for node in 0..2 {
            let n = events_of(&res, node, EventCode::GlobalClock);
            assert!(n >= 5, "node {node} has only {n} clock records");
        }
    }

    #[test]
    fn markers_define_and_pair() {
        let job = JobProgram::spmd(2, |_| {
            TaskProgram::single(vec![
                Op::MarkerBegin("Init".into()),
                Op::Compute(Duration::from_millis(1)),
                Op::MarkerBegin("Inner".into()),
                Op::Compute(Duration::from_millis(1)),
                Op::MarkerEnd("Inner".into()),
                Op::MarkerEnd("Init".into()),
            ])
        });
        let res = run(small_cfg(), job);
        for node in 0..2 {
            assert_eq!(events_of(&res, node, EventCode::MarkerDef), 2);
            assert_eq!(events_of(&res, node, EventCode::MarkerBegin), 2);
            assert_eq!(events_of(&res, node, EventCode::MarkerEnd), 2);
        }
    }

    #[test]
    fn unmatched_marker_end_errors() {
        let job = JobProgram::spmd(2, |_| {
            TaskProgram::single(vec![Op::MarkerEnd("nope".into())])
        });
        let err = Simulator::new(small_cfg(), &job)
            .unwrap()
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("without begin"), "{err}");
    }

    #[test]
    fn io_blocks_without_cpu() {
        let job = JobProgram::spmd(2, |_| {
            TaskProgram::single(vec![Op::Io(Duration::from_millis(30))])
        });
        let res = run(small_cfg(), job);
        for node in 0..2 {
            assert_eq!(events_of(&res, node, EventCode::IoStart), 1);
            assert_eq!(events_of(&res, node, EventCode::IoEnd), 1);
        }
        assert!(res.stats.end_time >= Time(30_000_000));
    }

    #[test]
    fn daemons_inject_system_activity() {
        let cfg = ClusterConfig {
            daemons_per_node: 2,
            daemon_period: Duration::from_millis(10),
            ..small_cfg()
        };
        let job = JobProgram::spmd(2, |_| {
            TaskProgram::single(vec![Op::Compute(Duration::from_millis(100))])
        });
        let res = run(cfg, job);
        for node in 0..2 {
            assert!(events_of(&res, node, EventCode::Interrupt) >= 5);
        }
        // Thread table includes system threads.
        assert_eq!(res.threads.of_type(ThreadType::System).count(), 4);
    }

    #[test]
    fn timestamps_are_local_and_drift_apart() {
        // Two nodes computing for 2 s: their trace-stop local timestamps
        // should differ by the configured drift (±12 ppm each way plus
        // offsets).
        let cfg = ClusterConfig {
            clock_sample_period: Duration::from_millis(500),
            ..small_cfg()
        };
        let job = JobProgram::spmd(2, |_| {
            TaskProgram::single(vec![Op::Compute(Duration::from_secs(2))])
        });
        let res = run(cfg, job);
        let stop0 = res.raw_files[0]
            .events
            .iter()
            .find(|e| e.code == EventCode::TraceStop)
            .unwrap()
            .timestamp;
        let stop1 = res.raw_files[1]
            .events
            .iter()
            .find(|e| e.code == EventCode::TraceStop)
            .unwrap()
            .timestamp;
        assert_ne!(stop0, stop1, "local clocks should disagree");
        // Node 0: +5 ppm, offset 0; node 1: -12 ppm, offset 50 µs.
        let diff = stop0.ticks() as i64 - stop1.ticks() as i64;
        // Expected ≈ 2 s · 17 ppm − 50 µs = 34 µs − 50 µs = −16 µs.
        assert!(diff.abs() < 1_000_000, "diff {diff} implausible");
    }

    #[test]
    fn per_node_event_streams_are_time_ordered() {
        let job = JobProgram::spmd(2, |r| {
            TaskProgram::single(vec![
                Op::Compute(Duration::from_millis(5)),
                Op::Send {
                    to: 1 - r,
                    bytes: 512,
                    tag: 1,
                },
                Op::Recv {
                    from: 1 - r,
                    tag: 1,
                },
                Op::Allreduce { bytes: 64 },
            ])
        });
        let res = run(small_cfg(), job);
        for f in &res.raw_files {
            for w in f.events.windows(2) {
                assert!(
                    w[0].timestamp <= w[1].timestamp,
                    "events out of order in node {} trace",
                    f.node
                );
            }
        }
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let job = JobProgram::spmd(2, |r| {
            TaskProgram::single(vec![
                Op::Compute(Duration::from_millis(3)),
                Op::Send {
                    to: 1 - r,
                    bytes: 256,
                    tag: 0,
                },
                Op::Recv {
                    from: 1 - r,
                    tag: 0,
                },
            ])
        });
        let a = run(small_cfg(), job.clone());
        let b = run(small_cfg(), job);
        assert_eq!(a.raw_files, b.raw_files);
    }

    #[test]
    fn wrong_task_count_rejected() {
        let job = JobProgram::spmd(3, |_| TaskProgram::single(vec![]));
        assert!(Simulator::new(small_cfg(), &job).is_err());
    }
}

#[cfg(test)]
mod extended_mpi_tests {
    use super::*;
    use crate::program::TaskProgram;
    use ute_rawtrace::record::MpiPayload as MP;

    fn cfg() -> ClusterConfig {
        ClusterConfig {
            nodes: 3,
            cpus_per_node: 2,
            tasks_per_node: 1,
            threads_per_task: 1,
            daemons_per_node: 0,
            clock_sample_period: Duration::from_millis(100),
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn init_finalize_bracket_the_job() {
        let job = JobProgram::spmd(3, |r| {
            TaskProgram::single(vec![
                Op::Init,
                Op::Compute(Duration::from_millis(r as u64 + 1)),
                Op::Finalize,
            ])
        });
        let res = Simulator::new(cfg(), &job).unwrap().run().unwrap();
        assert_eq!(res.stats.collectives, 2); // Init + Finalize
        for f in &res.raw_files {
            let codes: Vec<EventCode> = f
                .events
                .iter()
                .filter(|e| matches!(e.code, EventCode::MpiBegin(_) | EventCode::MpiEnd(_)))
                .map(|e| e.code)
                .collect();
            assert_eq!(codes.first(), Some(&EventCode::MpiBegin(MpiOp::Init)));
            assert_eq!(codes.last(), Some(&EventCode::MpiEnd(MpiOp::Finalize)));
        }
    }

    #[test]
    fn sendrecv_ring_exchanges_both_ways() {
        // Classic shift: everyone sendrecvs to the right / from the left.
        let job = JobProgram::spmd(3, |r| {
            TaskProgram::single(vec![
                Op::Init,
                Op::Sendrecv {
                    to: (r + 1) % 3,
                    from: (r + 2) % 3,
                    bytes: 4096,
                    tag: 0,
                },
                Op::Finalize,
            ])
        });
        let res = Simulator::new(cfg(), &job).unwrap().run().unwrap();
        assert_eq!(res.stats.messages, 3);
        for f in &res.raw_files {
            let begin = f
                .events
                .iter()
                .filter(|e| e.code == EventCode::MpiBegin(MpiOp::Sendrecv))
                .count();
            let ends: Vec<&ute_rawtrace::record::RawEvent> = f
                .events
                .iter()
                .filter(|e| e.code == EventCode::MpiEnd(MpiOp::Sendrecv))
                .collect();
            assert_eq!(begin, 1);
            assert_eq!(ends.len(), 1);
            let p = MP::from_bytes(&ends[0].payload).unwrap();
            assert_eq!(p.bytes, 4096);
            assert!(p.seq > 0);
        }
    }

    #[test]
    fn sendrecv_converts_with_both_byte_fields() {
        use ute_convert::convert_node;
        use ute_format::file::IntervalFileReader;
        use ute_format::profile::Profile;
        use ute_format::state::StateCode;

        let job = JobProgram::spmd(3, |r| {
            TaskProgram::single(vec![Op::Sendrecv {
                to: (r + 1) % 3,
                from: (r + 2) % 3,
                bytes: 2048,
                tag: 0,
            }])
        });
        let res = Simulator::new(cfg(), &job).unwrap().run().unwrap();
        let profile = Profile::standard();
        let markers = ute_convert::MarkerMap::build(&res.raw_files).unwrap();
        let out = convert_node(
            &res.raw_files[0],
            &res.threads,
            &profile,
            &markers,
            ute_format::file::FramePolicy::default(),
        )
        .unwrap();
        let r = IntervalFileReader::open(&out.interval_file, &profile).unwrap();
        let sr = r
            .intervals()
            .map(|x| x.unwrap())
            .find(|iv| {
                iv.itype.state == StateCode::mpi(MpiOp::Sendrecv) && iv.itype.bebits.ends_state()
            })
            .expect("sendrecv interval present");
        let sent = sr
            .extra(&profile, "msgSizeSent")
            .unwrap()
            .as_uint()
            .unwrap();
        let recvd = sr
            .extra(&profile, "msgSizeRecvd")
            .unwrap()
            .as_uint()
            .unwrap();
        assert_eq!(sent, 2048);
        assert_eq!(recvd, 2048);
    }
}

#[cfg(test)]
mod config_validation_tests {
    use super::*;
    use crate::program::TaskProgram;

    fn job() -> JobProgram {
        JobProgram::spmd(1, |_| {
            TaskProgram::single(vec![Op::Compute(Duration::from_millis(1))])
        })
    }

    #[test]
    fn degenerate_configs_rejected() {
        let base = ClusterConfig {
            nodes: 1,
            tasks_per_node: 1,
            threads_per_task: 1,
            ..ClusterConfig::default()
        };
        let zero_quantum = ClusterConfig {
            quantum: Duration::ZERO,
            ..base.clone()
        };
        assert!(Simulator::new(zero_quantum, &job()).is_err());
        let zero_daemon = ClusterConfig {
            daemons_per_node: 1,
            daemon_period: Duration::ZERO,
            ..base.clone()
        };
        assert!(Simulator::new(zero_daemon, &job()).is_err());
        let no_cpus = ClusterConfig {
            cpus_per_node: 0,
            ..base.clone()
        };
        assert!(Simulator::new(no_cpus, &job()).is_err());
        assert!(Simulator::new(base, &job()).is_ok());
    }
}
