//! Cluster configuration.

use ute_clock::drift::ClockParams;
use ute_clock::global::GlobalClock;
use ute_core::time::Duration;
use ute_rawtrace::buffer::TraceOptions;

/// The switch network model: a message of `b` bytes sent at time `t`
/// occupies the sender for `overhead + b/bandwidth` and arrives at
/// `t + overhead + b/bandwidth + latency`.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// Per-message software overhead on the sender.
    pub overhead: Duration,
    /// Wire latency through the switch.
    pub latency: Duration,
    /// Link bandwidth in bytes per second.
    pub bandwidth: u64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        // SP-era switch: ~25 µs latency, ~150 MB/s links, ~5 µs overhead.
        NetworkModel {
            overhead: Duration::from_micros(5),
            latency: Duration::from_micros(25),
            bandwidth: 150_000_000,
        }
    }
}

impl NetworkModel {
    /// Sender-side occupation for a message of `bytes`.
    pub fn send_time(&self, bytes: u64) -> Duration {
        self.overhead + self.transfer_time(bytes)
    }

    /// Pure transfer time of `bytes` at link bandwidth.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        if self.bandwidth == 0 {
            Duration::ZERO
        } else {
            Duration(
                (bytes as u128 * ute_core::time::TICKS_PER_SEC as u128 / self.bandwidth as u128)
                    as u64,
            )
        }
    }

    /// Completion time model for a collective over `ntasks` tasks moving
    /// `bytes` per task: a log₂-tree of point-to-point steps.
    pub fn collective_time(&self, ntasks: u32, bytes: u64) -> Duration {
        let rounds = 32 - ntasks.max(1).leading_zeros(); // ceil(log2)+1-ish
        let per_round = self.latency + self.transfer_time(bytes) + self.overhead;
        Duration(per_round.ticks() * rounds.max(1) as u64)
    }
}

/// Full description of the simulated machine and its tracing setup.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of SMP nodes.
    pub nodes: u16,
    /// CPUs per node.
    pub cpus_per_node: u16,
    /// MPI tasks placed on each node (ranks are dealt round-robin by
    /// node-major order: node 0 gets ranks 0..tasks_per_node, etc.).
    pub tasks_per_node: u16,
    /// Threads per task; thread 0 is the task's MPI thread.
    pub threads_per_task: u16,
    /// Scheduler time quantum.
    pub quantum: Duration,
    /// Cost of a context switch (charged on every dispatch).
    pub ctx_switch: Duration,
    /// The switch network.
    pub network: NetworkModel,
    /// Global-clock sampling period per node (§2.2). Zero disables.
    pub clock_sample_period: Duration,
    /// If `Some(k)`, every k-th clock sample on every node suffers a
    /// deschedule between the global and local reads (the §5 outlier).
    pub clock_outlier_every: Option<usize>,
    /// Deschedule length injected into outlier clock samples.
    pub clock_outlier_delay: Duration,
    /// Per-node local clock parameters; cycled if shorter than `nodes`.
    pub clock_params: Vec<ClockParams>,
    /// The switch-adapter global clock.
    pub global_clock: GlobalClock,
    /// Trace options applied on every node.
    pub trace: TraceOptions,
    /// Number of system daemon threads per node (they wake periodically
    /// and burn a short CPU burst, cutting system events).
    pub daemons_per_node: u16,
    /// Daemon wake period.
    pub daemon_period: Duration,
    /// Daemon burst length.
    pub daemon_burst: Duration,
    /// Master seed for deterministic clock/daemon jitter.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            cpus_per_node: 4,
            tasks_per_node: 1,
            threads_per_task: 4,
            quantum: Duration::from_millis(10),
            ctx_switch: Duration::from_micros(5),
            network: NetworkModel::default(),
            clock_sample_period: Duration::from_secs(1),
            clock_outlier_every: None,
            clock_outlier_delay: Duration::from_millis(2),
            clock_params: Vec::new(),
            global_clock: GlobalClock::default(),
            trace: TraceOptions::default(),
            daemons_per_node: 1,
            daemon_period: Duration::from_millis(100),
            daemon_burst: Duration::from_micros(200),
            seed: 0x5eed,
        }
    }
}

impl ClusterConfig {
    /// Total MPI tasks in the job.
    pub fn total_tasks(&self) -> u32 {
        self.nodes as u32 * self.tasks_per_node as u32
    }

    /// The node a rank lives on.
    pub fn node_of_rank(&self, rank: u32) -> u16 {
        (rank / self.tasks_per_node as u32) as u16
    }

    /// Clock parameters for a node (cycling the provided list; defaults to
    /// distinct mild drifts when the list is empty).
    pub fn clock_for_node(&self, node: u16) -> ClockParams {
        if self.clock_params.is_empty() {
            // Distinct deterministic drifts: ±(5..40) ppm spread by node.
            let sign = if node.is_multiple_of(2) { 1.0 } else { -1.0 };
            ClockParams {
                offset_ticks: node as i64 * 50_000,
                freq_error_ppm: sign * (5.0 + 7.0 * node as f64),
                temp_walk_ppm: 0.0,
                temp_bound_ppm: 0.0,
                read_quantum_ticks: 1,
                seed: self.seed ^ node as u64,
            }
        } else {
            let mut p = self.clock_params[node as usize % self.clock_params.len()].clone();
            p.seed ^= node as u64;
            p
        }
    }

    /// A configuration sized for generated scenarios: `nodes` SMP nodes
    /// of `cpus_per_node` CPUs each running `tasks_per_node` tasks of
    /// `threads_per_task` threads. Past 64 nodes the per-node daemons
    /// are turned off and clock sampling slows down, so event volume
    /// tracks the *program*, not the node count — the discrete-event
    /// simulation only needs to be sparse in events, not in wall time,
    /// which is what lets scenarios scale to thousands of nodes.
    pub fn scaled(
        nodes: u16,
        cpus_per_node: u16,
        tasks_per_node: u16,
        threads_per_task: u16,
    ) -> ClusterConfig {
        let big = nodes >= 64;
        ClusterConfig {
            nodes,
            cpus_per_node,
            tasks_per_node,
            threads_per_task,
            daemons_per_node: if big { 0 } else { 1 },
            clock_sample_period: if big {
                Duration::from_secs(4)
            } else {
                Duration::from_secs(1)
            },
            ..ClusterConfig::default()
        }
    }

    /// The sPPM scenario of Figures 8–9: 4 nodes, each an 8-way SMP, one
    /// task per node with four threads (one making MPI calls).
    pub fn sppm_like() -> ClusterConfig {
        ClusterConfig {
            nodes: 4,
            cpus_per_node: 8,
            tasks_per_node: 1,
            threads_per_task: 4,
            ..ClusterConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_times() {
        let n = NetworkModel {
            overhead: Duration::from_micros(5),
            latency: Duration::from_micros(25),
            bandwidth: 100_000_000,
        };
        // 1 MB at 100 MB/s = 10 ms transfer.
        assert_eq!(n.transfer_time(1_000_000), Duration::from_millis(10));
        assert_eq!(n.send_time(0), Duration::from_micros(5));
        // Collectives grow with log2(ntasks).
        assert!(n.collective_time(16, 1024) > n.collective_time(4, 1024));
        assert!(n.collective_time(1, 0) > Duration::ZERO);
    }

    #[test]
    fn zero_bandwidth_means_free_transfer() {
        let n = NetworkModel {
            bandwidth: 0,
            ..NetworkModel::default()
        };
        assert_eq!(n.transfer_time(1 << 30), Duration::ZERO);
    }

    #[test]
    fn rank_placement() {
        let c = ClusterConfig {
            nodes: 4,
            tasks_per_node: 2,
            ..ClusterConfig::default()
        };
        assert_eq!(c.total_tasks(), 8);
        assert_eq!(c.node_of_rank(0), 0);
        assert_eq!(c.node_of_rank(1), 0);
        assert_eq!(c.node_of_rank(2), 1);
        assert_eq!(c.node_of_rank(7), 3);
    }

    #[test]
    fn default_clocks_are_distinct_per_node() {
        let c = ClusterConfig::default();
        let a = c.clock_for_node(0);
        let b = c.clock_for_node(1);
        assert_ne!(a.freq_error_ppm, b.freq_error_ppm);
        assert_ne!(a.offset_ticks, b.offset_ticks);
    }

    #[test]
    fn sppm_matches_paper_topology() {
        let c = ClusterConfig::sppm_like();
        assert_eq!(c.nodes, 4);
        assert_eq!(c.cpus_per_node, 8);
        assert_eq!(c.threads_per_task, 4);
        assert_eq!(c.total_tasks(), 4);
    }
}
