//! The per-node trace buffer.
//!
//! §2.1: "a mechanism is provided to specify a set of trace options, such
//! as the name prefix of the trace files, trace buffer size, and events to
//! be traced. By default tracing starts at the start of program execution.
//! The user can also delay trace generation until a later point to trace
//! only a portion of the code to substantially reduce the amount of trace
//! data."
//!
//! Records are encoded into a fixed-size in-memory buffer; when it fills,
//! the buffer either flushes to the backing store (the common mode) or
//! drops further records (single-buffer mode), with drops counted so the
//! loss is visible.

use ute_core::error::Result;
use ute_core::event::EventClass;
use ute_core::time::LocalTime;
use ute_faults::FaultPlan;

use crate::cost::{CostLedger, CostModel};
use crate::record::RawEvent;

/// What happens when the trace buffer fills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BufferMode {
    /// Flush the buffer to the backing store and keep tracing.
    #[default]
    Flush,
    /// Stop collecting: further records are dropped (and counted).
    StopWhenFull,
}

/// Trace options, per §2.1.
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Name prefix of the trace files (one per node: `<prefix>.<node>.raw`).
    pub file_prefix: String,
    /// Trace buffer size in bytes.
    pub buffer_size: usize,
    /// Bitmask of enabled [`EventClass`]es (bit index = `class.bit()`).
    pub enabled_classes: u8,
    /// If set, records cut before this local time are discarded (delayed
    /// trace start).
    pub start_after: Option<LocalTime>,
    /// Behaviour on buffer full.
    pub mode: BufferMode,
    /// Modelled per-record costs.
    pub cost: CostModel,
    /// Optional fault-injection plan. Buffer-level faults (dropped
    /// flushes, clock jumps) are applied live while records are cut;
    /// byte-level faults are applied by whoever writes the file.
    pub faults: Option<FaultPlan>,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            file_prefix: "trace".into(),
            buffer_size: 1 << 20,
            enabled_classes: 0xff,
            start_after: None,
            mode: BufferMode::Flush,
            cost: CostModel::default(),
            faults: None,
        }
    }
}

impl TraceOptions {
    /// Enables only the listed classes (Control is always kept enabled so
    /// trace start/stop bookkeeping survives).
    pub fn with_classes(mut self, classes: &[EventClass]) -> TraceOptions {
        let mut mask = 1u8 << EventClass::Control.bit();
        for c in classes {
            mask |= 1 << c.bit();
        }
        self.enabled_classes = mask;
        self
    }

    /// Whether a class is enabled.
    pub fn class_enabled(&self, class: EventClass) -> bool {
        self.enabled_classes & (1 << class.bit()) != 0
    }
}

/// The in-memory trace buffer and its flush/drop accounting.
#[derive(Debug)]
pub struct TraceBuffer {
    opts: TraceOptions,
    /// Current in-flight buffer contents.
    buf: ute_core::codec::ByteWriter,
    /// Flushed output (becomes the raw file body).
    flushed: Vec<u8>,
    /// Number of flushes performed.
    pub flush_count: u64,
    /// Records dropped (StopWhenFull mode, or cut before delayed start).
    pub dropped: u64,
    /// Tracing-overhead ledger.
    pub ledger: CostLedger,
    /// Whether tracing is currently on (between start and stop).
    active: bool,
    /// Records inserted so far (fault clock-jump indexing).
    inserted: u64,
    /// Flush indices to discard (injected dropped-flush faults).
    drop_flushes: Vec<u32>,
    /// Injected clock step: from record `after` on, timestamps move by
    /// `delta` ticks.
    clock_jump: Option<(u64, i64)>,
    /// Cached metric handles — the cut path runs once per simulated
    /// event, so each update must stay a single atomic add.
    obs_cut: &'static ute_obs::Counter,
    obs_wrapped: &'static ute_obs::Counter,
    obs_fills: &'static ute_obs::Counter,
    obs_flushes: &'static ute_obs::Counter,
    obs_dropped: &'static ute_obs::Counter,
    obs_bytes: &'static ute_obs::Counter,
}

impl TraceBuffer {
    /// Creates a buffer with the given options; tracing starts active
    /// unless a delayed start is configured. Fault plans are resolved
    /// for node 0 — use [`TraceBuffer::with_node`] when the plan must be
    /// narrowed to a specific node.
    pub fn new(opts: TraceOptions) -> TraceBuffer {
        TraceBuffer::with_node(opts, 0)
    }

    /// [`TraceBuffer::new`] for a specific node: buffer-level faults in
    /// `opts.faults` planned for other nodes are ignored.
    pub fn with_node(opts: TraceOptions, node: u16) -> TraceBuffer {
        let drop_flushes = opts
            .faults
            .as_ref()
            .map(|p| p.dropped_flushes(node))
            .unwrap_or_default();
        let clock_jump = opts.faults.as_ref().and_then(|p| p.clock_jump(node));
        TraceBuffer {
            buf: ute_core::codec::ByteWriter::with_capacity(opts.buffer_size.min(1 << 16)),
            flushed: Vec::new(),
            flush_count: 0,
            dropped: 0,
            ledger: CostLedger::default(),
            active: true,
            inserted: 0,
            drop_flushes,
            clock_jump,
            obs_cut: ute_obs::counter("rawtrace/records_cut"),
            obs_wrapped: ute_obs::counter("rawtrace/records_wrapped"),
            obs_fills: ute_obs::counter("rawtrace/buffer_fills"),
            obs_flushes: ute_obs::counter("rawtrace/flushes"),
            obs_dropped: ute_obs::counter("rawtrace/dropped"),
            obs_bytes: ute_obs::counter("rawtrace/bytes_flushed"),
            opts,
        }
    }

    /// The options this buffer was built with.
    pub fn options(&self) -> &TraceOptions {
        &self.opts
    }

    /// Turns tracing off (records are dropped but still cost the enable
    /// test).
    pub fn stop(&mut self) {
        self.active = false;
    }

    /// Turns tracing back on.
    pub fn start(&mut self) {
        self.active = true;
    }

    /// Cuts a record. Returns `true` if it was inserted, `false` if it was
    /// filtered (class disabled, before delayed start, tracing stopped, or
    /// buffer full in [`BufferMode::StopWhenFull`]).
    pub fn cut(&mut self, event: &RawEvent, wrapped: bool) -> Result<bool> {
        if !self.active || !self.opts.class_enabled(event.code.class()) {
            self.ledger.charge_rejected(&self.opts.cost);
            return Ok(false);
        }
        if let Some(after) = self.opts.start_after {
            if event.timestamp < after {
                self.ledger.charge_rejected(&self.opts.cost);
                self.dropped += 1;
                self.obs_dropped.inc();
                return Ok(false);
            }
        }
        let need = event.encoded_len();
        if self.buf.pos() as usize + need > self.opts.buffer_size {
            self.obs_fills.inc();
            match self.opts.mode {
                BufferMode::Flush => self.flush(),
                BufferMode::StopWhenFull => {
                    self.ledger.charge_rejected(&self.opts.cost);
                    self.dropped += 1;
                    self.obs_dropped.inc();
                    return Ok(false);
                }
            }
        }
        match self.clock_jump {
            Some((after, delta)) if self.inserted >= after => {
                let mut jumped = event.clone();
                jumped.timestamp = LocalTime(event.timestamp.ticks().saturating_add_signed(delta));
                jumped.encode(&mut self.buf)?;
            }
            _ => event.encode(&mut self.buf)?,
        }
        self.inserted += 1;
        self.ledger.charge_cut(&self.opts.cost, wrapped);
        self.obs_cut.inc();
        if wrapped {
            self.obs_wrapped.inc();
        }
        Ok(true)
    }

    /// Flushes the in-flight buffer to the backing store. An injected
    /// dropped-flush fault discards the buffer contents instead — a
    /// whole contiguous run of records silently lost, exactly what an
    /// asynchronous flush that never completed looks like on disk.
    pub fn flush(&mut self) {
        if self.buf.pos() > 0 {
            if self.drop_flushes.contains(&(self.flush_count as u32)) {
                ute_obs::counter("faults/flushes_dropped").inc();
                self.dropped += 1;
            } else {
                self.obs_bytes.add(self.buf.pos());
                self.obs_flushes.inc();
                self.flushed.extend_from_slice(self.buf.as_bytes());
            }
            self.buf =
                ute_core::codec::ByteWriter::with_capacity(self.opts.buffer_size.min(1 << 16));
            self.flush_count += 1;
        }
    }

    /// Flushes and returns the complete raw byte stream of every record
    /// cut so far.
    pub fn finish(mut self) -> Vec<u8> {
        self.flush();
        self.flushed
    }

    /// Bytes currently pending in the in-flight buffer.
    pub fn pending_bytes(&self) -> usize {
        self.buf.pos() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_core::codec::ByteReader;
    use ute_core::event::EventCode;

    fn ev(t: u64) -> RawEvent {
        RawEvent::new(EventCode::Syscall, LocalTime(t), vec![0; 4])
    }

    fn decode_all(bytes: &[u8]) -> Vec<RawEvent> {
        let mut r = ByteReader::new(bytes);
        let mut out = Vec::new();
        while !r.is_empty() {
            out.push(RawEvent::decode(&mut r).unwrap());
        }
        out
    }

    #[test]
    fn cut_and_finish_round_trip() {
        let mut b = TraceBuffer::new(TraceOptions::default());
        for t in 0..100 {
            assert!(b.cut(&ev(t), false).unwrap());
        }
        let events = decode_all(&b.finish());
        assert_eq!(events.len(), 100);
        assert_eq!(events[7].timestamp, LocalTime(7));
    }

    #[test]
    fn small_buffer_flushes() {
        let opts = TraceOptions {
            buffer_size: 64, // fits 4 records of 16 bytes
            ..TraceOptions::default()
        };
        let mut b = TraceBuffer::new(opts);
        for t in 0..10 {
            assert!(b.cut(&ev(t), false).unwrap());
        }
        assert!(
            b.flush_count >= 2,
            "expected flushes, got {}",
            b.flush_count
        );
        assert_eq!(decode_all(&b.finish()).len(), 10);
    }

    #[test]
    fn stop_when_full_drops_and_counts() {
        let opts = TraceOptions {
            buffer_size: 32, // 2 records
            mode: BufferMode::StopWhenFull,
            ..TraceOptions::default()
        };
        let mut b = TraceBuffer::new(opts);
        let mut inserted = 0;
        for t in 0..10 {
            if b.cut(&ev(t), false).unwrap() {
                inserted += 1;
            }
        }
        assert_eq!(inserted, 2);
        assert_eq!(b.dropped, 8);
        assert_eq!(decode_all(&b.finish()).len(), 2);
    }

    #[test]
    fn class_mask_filters() {
        let opts = TraceOptions::default().with_classes(&[EventClass::Mpi]);
        let mut b = TraceBuffer::new(opts);
        // Syscall is System class — disabled.
        assert!(!b.cut(&ev(1), false).unwrap());
        let mpi = RawEvent::new(
            EventCode::MpiBegin(ute_core::event::MpiOp::Send),
            LocalTime(2),
            vec![],
        );
        assert!(b.cut(&mpi, true).unwrap());
        assert_eq!(b.ledger.records_cut, 1);
        assert_eq!(b.ledger.tests_rejected, 1);
    }

    #[test]
    fn delayed_start_discards_early_records() {
        let opts = TraceOptions {
            start_after: Some(LocalTime(50)),
            ..TraceOptions::default()
        };
        let mut b = TraceBuffer::new(opts);
        assert!(!b.cut(&ev(10), false).unwrap());
        assert!(b.cut(&ev(60), false).unwrap());
        assert_eq!(b.dropped, 1);
        let events = decode_all(&b.finish());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].timestamp, LocalTime(60));
    }

    #[test]
    fn stop_start_toggle() {
        let mut b = TraceBuffer::new(TraceOptions::default());
        assert!(b.cut(&ev(1), false).unwrap());
        b.stop();
        assert!(!b.cut(&ev(2), false).unwrap());
        b.start();
        assert!(b.cut(&ev(3), false).unwrap());
        assert_eq!(decode_all(&b.finish()).len(), 2);
    }

    #[test]
    fn dropped_flush_fault_loses_one_contiguous_run() {
        let opts = TraceOptions {
            buffer_size: 64, // 4 records of 16 bytes per flush
            faults: Some(ute_faults::FaultPlan::parse("3:dropflush@1").unwrap()),
            ..TraceOptions::default()
        };
        let mut b = TraceBuffer::with_node(opts, 3);
        for t in 0..12 {
            assert!(b.cut(&ev(t), false).unwrap());
        }
        let events = decode_all(&b.finish());
        // Flush 1 (records 4..8) vanished; every survivor is intact.
        assert_eq!(events.len(), 8);
        let times: Vec<u64> = events.iter().map(|e| e.timestamp.ticks()).collect();
        assert_eq!(times, vec![0, 1, 2, 3, 8, 9, 10, 11]);
    }

    #[test]
    fn dropped_flush_fault_ignores_other_nodes() {
        let opts = TraceOptions {
            buffer_size: 64,
            faults: Some(ute_faults::FaultPlan::parse("3:dropflush@1").unwrap()),
            ..TraceOptions::default()
        };
        let mut b = TraceBuffer::with_node(opts, 2);
        for t in 0..12 {
            b.cut(&ev(t), false).unwrap();
        }
        assert_eq!(decode_all(&b.finish()).len(), 12);
    }

    #[test]
    fn clock_jump_fault_steps_timestamps() {
        let opts = TraceOptions {
            faults: Some(ute_faults::FaultPlan::parse("0:clockjump@5+1000").unwrap()),
            ..TraceOptions::default()
        };
        let mut b = TraceBuffer::new(opts);
        for t in 0..10 {
            b.cut(&ev(t), false).unwrap();
        }
        let events = decode_all(&b.finish());
        assert_eq!(events[4].timestamp, LocalTime(4));
        assert_eq!(events[5].timestamp, LocalTime(1005));
        assert_eq!(events[9].timestamp, LocalTime(1009));
    }

    #[test]
    fn overhead_ledger_charges_costs() {
        let mut b = TraceBuffer::new(TraceOptions::default());
        b.cut(&ev(1), false).unwrap();
        b.cut(&ev(2), true).unwrap();
        let m = CostModel::default();
        assert_eq!(b.ledger.total, m.cut() + m.cut_wrapped());
    }
}
