//! Zero-copy raw decoding: validate bounds once, then borrow.
//!
//! [`decode_view`] parses one record as a borrowed [`RawEventView`],
//! enforcing exactly the bounds rules the corruption fuzzer probes — a
//! known event code in the hookword, a record length of at least the
//! fixed prefix, and a payload that fits inside the buffer — without
//! copying a byte. [`RawTraceView::open`] runs that validation over the
//! whole file exactly once; afterwards [`RawTraceView::events`] walks
//! the records handing out borrowed views with no per-record error
//! handling and no allocation. [`salvage_views`] is the salvage decoder
//! on the same views: scanning and resynchronizing a damaged file
//! allocates nothing per attempted record, so it is safe to point at a
//! memory-mapped file of any size.
//!
//! The owned decoders ([`crate::RawTraceFile::from_bytes`] and friends)
//! are thin layers over this module; the pre-zero-copy implementations
//! survive behind the `reference-decode` feature as the differential
//! baseline for the fast-vs-reference oracle in `ute-verify`.

use ute_core::codec::ByteReader;
use ute_core::error::{Result, UteError};
use ute_core::event::EventCode;
use ute_core::ids::NodeId;
use ute_core::time::LocalTime;

use crate::file::{scan_resync, RawTraceReader, SalvageReport, HEADER_LEN};
use crate::hookword::Hookword;
use crate::record::RawEvent;

/// One raw trace event, borrowed from the underlying file bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawEventView<'a> {
    /// The event type.
    pub code: EventCode,
    /// Local-clock timestamp at which the event was cut.
    pub timestamp: LocalTime,
    /// Type-specific payload bytes, borrowed from the file buffer.
    pub payload: &'a [u8],
}

impl RawEventView<'_> {
    /// Copies the view into an owned [`RawEvent`].
    pub fn to_owned(&self) -> RawEvent {
        RawEvent::new(self.code, self.timestamp, self.payload.to_vec())
    }
}

/// Decodes one record at the reader's position as a borrowed view. The
/// error conditions (and their reported offsets) are byte-for-byte those
/// of the owned decoder: a hookword whose event code is unknown or whose
/// length undercuts the fixed prefix is corrupt at the record start; a
/// buffer that ends inside the prefix or the payload is corrupt at the
/// short field.
#[inline]
pub fn decode_view<'a>(r: &mut ByteReader<'a>) -> Result<RawEventView<'a>> {
    let at = r.pos();
    let hook = Hookword::from_u32(r.get_u32()?).map_err(|e| match e {
        UteError::Corrupt { what, .. } => UteError::corrupt_at(what, at),
        other => other,
    })?;
    let timestamp = LocalTime(r.get_u64()?);
    let payload = r.get_bytes(hook.payload_len())?;
    Ok(RawEventView {
        code: hook.code,
        timestamp,
        payload,
    })
}

/// A raw trace file validated once and read as borrowed views.
///
/// `open` checks the header and walks every declared record's bounds up
/// front; iteration via [`RawTraceView::events`] then cannot fail and
/// cannot read outside `data` — the contract that makes handing out
/// views over a memory-mapped file safe.
#[derive(Debug, Clone, Copy)]
pub struct RawTraceView<'a> {
    /// The node that produced the file.
    pub node: NodeId,
    /// Recorded tick rate.
    pub tick_rate: u64,
    /// Validated record count (the header's declared count, every one of
    /// which was bounds-checked by `open`).
    pub records: usize,
    data: &'a [u8],
}

impl<'a> RawTraceView<'a> {
    /// Validates the header and every record's bounds — the single
    /// validation pass. Reports exactly the error (and offset) the
    /// incremental owned decoder would hit first.
    pub fn open(data: &'a [u8]) -> Result<RawTraceView<'a>> {
        let rd = RawTraceReader::open(data)?;
        let (node, tick_rate, record_count) = (rd.node, rd.tick_rate, rd.record_count);
        let mut r = ByteReader::new(data);
        r.seek(HEADER_LEN as u64)?;
        for _ in 0..record_count {
            decode_view(&mut r)?;
        }
        Ok(RawTraceView {
            node,
            tick_rate,
            records: record_count as usize,
            data,
        })
    }

    /// Iterates the validated records as borrowed views: no copying, no
    /// allocation, no per-record error paths.
    pub fn events(&self) -> ViewIter<'a> {
        let mut r = ByteReader::new(self.data);
        // The seek target was validated by `open`.
        let _ = r.seek(HEADER_LEN as u64);
        ViewIter {
            r,
            remaining: self.records,
        }
    }
}

/// Iterator over a pre-validated file's records as borrowed views.
///
/// Defensive by construction: if the underlying bytes somehow fail to
/// decode (which [`RawTraceView::open`]'s validation rules out), the
/// iterator ends instead of panicking — it can never read out of bounds
/// because every access goes through checked slicing.
pub struct ViewIter<'a> {
    r: ByteReader<'a>,
    remaining: usize,
}

impl<'a> Iterator for ViewIter<'a> {
    type Item = RawEventView<'a>;

    fn next(&mut self) -> Option<RawEventView<'a>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        decode_view(&mut self.r).ok()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Salvage-decoded views plus the damage report.
#[derive(Debug)]
pub struct SalvagedViews<'a> {
    /// The node that produced the file.
    pub node: NodeId,
    /// Recorded tick rate.
    pub tick_rate: u64,
    /// Every record recovered, in file order, as borrowed views.
    pub events: Vec<RawEventView<'a>>,
    /// What was recovered and what was given up.
    pub report: SalvageReport,
}

/// Salvage-mode decoding over borrowed views: the same resync algorithm
/// as [`crate::RawTraceFile::from_bytes_salvage`] — header must be
/// intact, every decode failure triggers a bounded forward scan for the
/// next valid hookword boundary, the declared record count is advisory —
/// but scanning allocates nothing and recovered records stay borrowed.
/// The recovered sequence and the [`SalvageReport`] are identical to the
/// owned decoder's, which the fast-vs-reference oracle checks.
pub fn salvage_views(data: &[u8]) -> Result<SalvagedViews<'_>> {
    let rd = RawTraceReader::open(data)?;
    let (node, tick_rate, record_count) = (rd.node, rd.tick_rate, rd.record_count);
    let mut r = ByteReader::new(data);
    r.seek(HEADER_LEN as u64)?;
    let cap = ute_core::codec::clamped_capacity(
        record_count as usize,
        crate::hookword::FIXED_PREFIX,
        data.len(),
    );
    let mut events = Vec::with_capacity(cap);
    let mut report = SalvageReport::default();
    while !r.is_empty() {
        let at = r.pos();
        match decode_view(&mut r) {
            Ok(ev) => events.push(ev),
            Err(_) => {
                report.records_skipped += 1;
                match scan_resync(data, at as usize + 1) {
                    Some(next) => {
                        report.resyncs += 1;
                        report.bytes_skipped += next as u64 - at;
                        r.seek(next as u64)?;
                    }
                    None => {
                        report.truncated_tail = true;
                        report.bytes_skipped += data.len() as u64 - at;
                        break;
                    }
                }
            }
        }
    }
    report.records = events.len() as u64;
    report.count_mismatch = report.records != record_count;
    if !report.is_clean() {
        ute_obs::counter("salvage/records_skipped").add(report.records_skipped);
        ute_obs::counter("salvage/bytes_skipped").add(report.bytes_skipped);
        ute_obs::counter("salvage/resyncs").add(report.resyncs);
    }
    Ok(SalvagedViews {
        node,
        tick_rate,
        events,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::RawTraceFile;

    fn sample() -> (RawTraceFile, Vec<u8>) {
        let events = (0..40)
            .map(|t| RawEvent::new(EventCode::Syscall, LocalTime(t * 7), vec![t as u8; 5]))
            .collect();
        let f = RawTraceFile::new(NodeId(2), events);
        let bytes = f.to_bytes().unwrap();
        (f, bytes)
    }

    #[test]
    fn views_borrow_without_copying() {
        let (f, bytes) = sample();
        let view = RawTraceView::open(&bytes).unwrap();
        assert_eq!(view.node, f.node);
        assert_eq!(view.records, 40);
        let range = bytes.as_ptr_range();
        for (v, owned) in view.events().zip(&f.events) {
            assert_eq!(v.code, owned.code);
            assert_eq!(v.timestamp, owned.timestamp);
            assert_eq!(v.payload, &owned.payload[..]);
            // The payload really points into the file buffer.
            assert!(range.contains(&v.payload.as_ptr()));
            assert_eq!(v.to_owned(), *owned);
        }
        assert_eq!(view.events().count(), 40);
    }

    #[test]
    fn open_reports_the_first_corruption_like_the_owned_decoder() {
        let (_, mut bytes) = sample();
        // Destroy record 3's hookword (records are 17 bytes here).
        let at = HEADER_LEN + 3 * 17;
        bytes[at..at + 4].copy_from_slice(&0xffff_ffffu32.to_le_bytes());
        let view_err = RawTraceView::open(&bytes).unwrap_err();
        let owned_err = RawTraceFile::from_bytes(&bytes).unwrap_err();
        assert_eq!(view_err.to_string(), owned_err.to_string());
        match view_err {
            UteError::Corrupt { offset, .. } => assert_eq!(offset, Some(at as u64)),
            other => panic!("wrong error {other}"),
        }
    }

    #[test]
    fn open_rejects_truncation_without_panicking() {
        let (_, bytes) = sample();
        for keep in (0..bytes.len()).step_by(3) {
            let cut = &bytes[..keep];
            // Any truncation either opens (only when it cleanly holds the
            // declared records — impossible here) or errors; never panics.
            assert!(RawTraceView::open(cut).is_err());
        }
    }

    #[test]
    fn salvage_views_agree_with_owned_salvage() {
        let (_, mut bytes) = sample();
        let at = HEADER_LEN + 10 * 17;
        bytes[at..at + 4].copy_from_slice(&0xdead_beefu32.to_le_bytes());
        bytes.truncate(bytes.len() - 6);
        let sv = salvage_views(&bytes).unwrap();
        let (owned, report) = RawTraceFile::from_bytes_salvage(&bytes).unwrap();
        assert_eq!(sv.report, report);
        assert_eq!(sv.events.len(), owned.events.len());
        for (v, o) in sv.events.iter().zip(&owned.events) {
            assert_eq!(v.to_owned(), *o);
        }
    }
}
