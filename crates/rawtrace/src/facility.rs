//! The per-node tracing facility handle.
//!
//! This is what the simulator's node (or an instrumented program) holds: a
//! thread-safe wrapper over the trace buffer with typed cut methods for
//! every record the wrappers produce. It also owns:
//!
//! * the per-node **point-to-point sequence counter** — "The tracing
//!   library also adds a unique sequence number to each point-to-point
//!   message passing event record so that utilities can match sends with
//!   corresponding receives" (§2.1);
//! * the **task-local marker registry** — "To minimize overhead, the
//!   tracing library assigns an identifier for the string without any
//!   cross-task communication" (§3.1), which is why the same string can
//!   receive different ids in different tasks and the convert utility must
//!   re-unify them.

use parking_lot::Mutex;
use std::collections::HashMap;

use ute_core::error::Result;
use ute_core::event::{EventCode, MpiOp};
use ute_core::ids::{CpuId, LogicalThreadId, NodeId};
use ute_core::time::{LocalTime, Time};

use crate::buffer::{TraceBuffer, TraceOptions};
use crate::file::RawTraceFile;
use crate::record::{
    ClockPayload, DispatchPayload, MarkerDefPayload, MarkerPayload, MpiPayload, RawEvent,
};

struct Inner {
    buffer: TraceBuffer,
    /// Next point-to-point sequence number on this node, per task rank
    /// (each task numbers its own sends).
    next_seq: HashMap<u32, u64>,
    /// Task-local marker ids: (rank, marker string) → local id. Ids are
    /// assigned in call order per task, so identical strings may receive
    /// different ids in different tasks.
    marker_ids: HashMap<(u32, String), u32>,
    next_marker_id: HashMap<u32, u32>,
}

/// Thread-safe per-node tracing facility.
pub struct TraceFacility {
    node: NodeId,
    inner: Mutex<Inner>,
}

impl TraceFacility {
    /// Creates the facility for one node. A fault plan in `opts` is
    /// narrowed to this node's buffer-level faults.
    pub fn new(node: NodeId, opts: TraceOptions) -> TraceFacility {
        TraceFacility {
            node,
            inner: Mutex::new(Inner {
                buffer: TraceBuffer::with_node(opts, node.raw()),
                next_seq: HashMap::new(),
                marker_ids: HashMap::new(),
                next_marker_id: HashMap::new(),
            }),
        }
    }

    /// The node this facility traces.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Allocates the next point-to-point sequence number for a sending
    /// task. The pair (sender rank, seq) is unique job-wide.
    pub fn next_seq(&self, rank: u32) -> u64 {
        let mut g = self.inner.lock();
        let c = g.next_seq.entry(rank).or_insert(0);
        *c += 1;
        *c
    }

    /// Defines (or looks up) a user marker string for a task, cutting a
    /// MarkerDef record on first definition. Returns the task-local id.
    pub fn define_marker(&self, now: LocalTime, rank: u32, name: &str) -> Result<u32> {
        let mut g = self.inner.lock();
        if let Some(&id) = g.marker_ids.get(&(rank, name.to_string())) {
            return Ok(id);
        }
        let next = g.next_marker_id.entry(rank).or_insert(0);
        *next += 1;
        let id = *next;
        g.marker_ids.insert((rank, name.to_string()), id);
        let payload = MarkerDefPayload {
            local_id: id,
            rank,
            name: name.to_string(),
        };
        let ev = RawEvent::new(EventCode::MarkerDef, now, payload.to_bytes());
        g.buffer.cut(&ev, false)?;
        Ok(id)
    }

    /// Cuts a trace start/stop control record.
    pub fn cut_control(&self, now: LocalTime, start: bool) -> Result<bool> {
        let code = if start {
            EventCode::TraceStart
        } else {
            EventCode::TraceStop
        };
        self.cut_raw(RawEvent::new(code, now, vec![]), false)
    }

    /// Cuts a thread dispatch record.
    pub fn cut_dispatch(
        &self,
        now: LocalTime,
        thread: LogicalThreadId,
        cpu: CpuId,
        on: bool,
    ) -> Result<bool> {
        let code = if on {
            EventCode::ThreadDispatch
        } else {
            EventCode::ThreadUndispatch
        };
        let payload = DispatchPayload { thread, cpu }.to_bytes();
        self.cut_raw(RawEvent::new(code, now, payload), false)
    }

    /// Cuts a global-clock record pairing `global` with the record's own
    /// local timestamp `now`.
    pub fn cut_clock(&self, now: LocalTime, global: Time) -> Result<bool> {
        let payload = ClockPayload { global }.to_bytes();
        self.cut_raw(RawEvent::new(EventCode::GlobalClock, now, payload), false)
    }

    /// Cuts a marker begin/end record.
    pub fn cut_marker(
        &self,
        now: LocalTime,
        thread: LogicalThreadId,
        local_id: u32,
        address: u64,
        begin: bool,
    ) -> Result<bool> {
        let code = if begin {
            EventCode::MarkerBegin
        } else {
            EventCode::MarkerEnd
        };
        let payload = MarkerPayload {
            thread,
            local_id,
            address,
        }
        .to_bytes();
        self.cut_raw(RawEvent::new(code, now, payload), false)
    }

    /// Cuts an MPI begin/end record (wrapper cost applies).
    pub fn cut_mpi(
        &self,
        now: LocalTime,
        op: MpiOp,
        begin: bool,
        payload: MpiPayload,
    ) -> Result<bool> {
        let code = if begin {
            EventCode::MpiBegin(op)
        } else {
            EventCode::MpiEnd(op)
        };
        self.cut_raw(RawEvent::new(code, now, payload.to_bytes()), true)
    }

    /// Cuts a system-activity record (syscall, page fault, I/O, interrupt).
    pub fn cut_system(
        &self,
        now: LocalTime,
        code: EventCode,
        thread: LogicalThreadId,
    ) -> Result<bool> {
        let payload = DispatchPayload {
            thread,
            cpu: CpuId(0),
        }
        .to_bytes();
        self.cut_raw(RawEvent::new(code, now, payload), false)
    }

    /// Cuts an arbitrary pre-built record.
    pub fn cut_raw(&self, event: RawEvent, wrapped: bool) -> Result<bool> {
        self.inner.lock().buffer.cut(&event, wrapped)
    }

    /// Suspends tracing (delayed-start / partial-trace workflows).
    pub fn stop(&self) {
        self.inner.lock().buffer.stop();
    }

    /// Resumes tracing.
    pub fn start(&self) {
        self.inner.lock().buffer.start();
    }

    /// Total records cut so far.
    pub fn records_cut(&self) -> u64 {
        self.inner.lock().buffer.ledger.records_cut
    }

    /// Total modelled tracing overhead charged so far.
    pub fn overhead(&self) -> ute_core::time::Duration {
        self.inner.lock().buffer.ledger.total
    }

    /// Finishes tracing and produces the node's raw trace file.
    pub fn finish(self) -> Result<RawTraceFile> {
        let inner = self.inner.into_inner();
        let body = inner.buffer.finish();
        RawTraceFile::from_buffer_bytes(self.node, &body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MpiPayload;

    fn facility() -> TraceFacility {
        TraceFacility::new(NodeId(1), TraceOptions::default())
    }

    #[test]
    fn seq_numbers_are_per_rank_and_increasing() {
        let f = facility();
        assert_eq!(f.next_seq(0), 1);
        assert_eq!(f.next_seq(0), 2);
        assert_eq!(f.next_seq(1), 1);
        assert_eq!(f.next_seq(0), 3);
    }

    #[test]
    fn marker_definition_is_task_local_and_cut_once() {
        let f = facility();
        let a = f.define_marker(LocalTime(1), 0, "Initial Phase").unwrap();
        let a2 = f.define_marker(LocalTime(2), 0, "Initial Phase").unwrap();
        assert_eq!(a, a2);
        // Different task defining the same string after another marker gets
        // a *different* id — the cross-task collision §3.1 describes.
        f.define_marker(LocalTime(3), 1, "Other").unwrap();
        let b = f.define_marker(LocalTime(4), 1, "Initial Phase").unwrap();
        assert_ne!(a, b);
        let file = f.finish().unwrap();
        let defs: Vec<_> = file
            .events
            .iter()
            .filter(|e| e.code == EventCode::MarkerDef)
            .collect();
        assert_eq!(defs.len(), 3); // one per unique (rank, string)
    }

    #[test]
    fn typed_cuts_produce_decodable_records() {
        let f = facility();
        f.cut_control(LocalTime(0), true).unwrap();
        f.cut_dispatch(LocalTime(5), LogicalThreadId(2), CpuId(1), true)
            .unwrap();
        f.cut_clock(LocalTime(10), Time(9)).unwrap();
        f.cut_mpi(
            LocalTime(20),
            MpiOp::Send,
            true,
            MpiPayload::bare(LogicalThreadId(2), 0),
        )
        .unwrap();
        f.cut_system(LocalTime(30), EventCode::PageFault, LogicalThreadId(2))
            .unwrap();
        let file = f.finish().unwrap();
        assert_eq!(file.events.len(), 5);
        assert_eq!(file.events[0].code, EventCode::TraceStart);
        let d = DispatchPayload::from_bytes(&file.events[1].payload).unwrap();
        assert_eq!(d.cpu, CpuId(1));
        let c = ClockPayload::from_bytes(&file.events[2].payload).unwrap();
        assert_eq!(c.global, Time(9));
        assert_eq!(file.events[3].code, EventCode::MpiBegin(MpiOp::Send));
    }

    #[test]
    fn overhead_accumulates_per_cut() {
        let f = facility();
        f.cut_control(LocalTime(0), true).unwrap();
        let after_one = f.overhead();
        f.cut_mpi(
            LocalTime(1),
            MpiOp::Barrier,
            true,
            MpiPayload::bare(LogicalThreadId(0), 0),
        )
        .unwrap();
        assert!(f.overhead() > after_one);
        assert_eq!(f.records_cut(), 2);
    }

    #[test]
    fn facility_is_shareable_across_threads() {
        use std::sync::Arc;
        let f = Arc::new(facility());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    for k in 0..100u64 {
                        f.cut_system(
                            LocalTime(i * 1000 + k),
                            EventCode::Syscall,
                            LogicalThreadId(i as u16),
                        )
                        .unwrap();
                        f.next_seq(i as u32);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let f = Arc::try_unwrap(f).unwrap_or_else(|_| panic!("refs remain"));
        assert_eq!(f.finish().unwrap().events.len(), 400);
    }
}
