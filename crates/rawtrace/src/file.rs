//! The on-disk raw trace file — one per SMP node (§2.0: "multiple raw
//! trace files, one on each node").
//!
//! Layout: a small header (magic, format version, node id, tick rate,
//! record count) followed by the concatenated raw records in the order
//! they were cut. Records carry *local* timestamps; nothing in this file
//! is clock-adjusted.

use ute_core::codec::{ByteReader, ByteWriter};
use ute_core::error::{Result, UteError};
use ute_core::ids::NodeId;
use ute_core::time::TICKS_PER_SEC;

use crate::hookword::Hookword;
use crate::record::RawEvent;

/// Magic bytes opening every raw trace file.
pub const MAGIC: &[u8; 8] = b"UTERAW\0\0";

/// Current raw-format version.
pub const VERSION: u32 = 1;

/// Serialized header length: magic (8) + version (4) + node (2) +
/// tick rate (8) + record count (8).
pub const HEADER_LEN: usize = 30;

/// How far past a corrupt record the salvage decoder scans for the next
/// valid hookword boundary before giving up on the rest of the file.
pub const RESYNC_SCAN_LIMIT: usize = 64 << 10;

/// What salvage-mode decoding recovered and what it had to give up.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SalvageReport {
    /// Records successfully decoded.
    pub records: u64,
    /// Damaged regions hit (each costs at least one record).
    pub records_skipped: u64,
    /// Bytes scanned over while resynchronizing (including a dropped
    /// unrecoverable tail).
    pub bytes_skipped: u64,
    /// Times the decoder found a later valid hookword boundary and
    /// resumed.
    pub resyncs: u64,
    /// Whether the file ended before its declared record count —
    /// truncation, a dropped flush, or an overrun splice.
    pub count_mismatch: bool,
    /// Whether the tail of the file was abandoned (no valid boundary
    /// within the scan limit, or a mid-record end of data).
    pub truncated_tail: bool,
}

impl SalvageReport {
    /// Whether any damage was observed at all.
    pub fn is_clean(&self) -> bool {
        self.records_skipped == 0 && !self.count_mismatch && !self.truncated_tail
    }
}

/// Whether `at` looks like a record boundary: a valid hookword whose
/// declared record fits in `data`, followed by either end-of-data or
/// something that again parses as a hookword. The double check rejects
/// most accidental matches inside payload bytes — event codes are a
/// sparse subset of the 16-bit space, so two consecutive hits are
/// overwhelmingly likely to be a real boundary.
fn valid_boundary(data: &[u8], at: usize) -> bool {
    let Some(word) = data.get(at..at + 4) else {
        return false;
    };
    let word = u32::from_le_bytes([word[0], word[1], word[2], word[3]]);
    let Ok(hook) = Hookword::from_u32(word) else {
        return false;
    };
    let end = at + hook.length as usize;
    if end > data.len() {
        return false;
    }
    if end == data.len() {
        return true;
    }
    match data.get(end..end + 4) {
        // Fewer than 4 trailing bytes — unverifiable, but the candidate
        // record itself fits; accept and let the decoder report the
        // trailing garbage.
        None => true,
        Some(next) => {
            Hookword::from_u32(u32::from_le_bytes([next[0], next[1], next[2], next[3]])).is_ok()
        }
    }
}

/// Scans forward from `from` for the next valid record boundary, giving
/// up after [`RESYNC_SCAN_LIMIT`] bytes.
pub(crate) fn scan_resync(data: &[u8], from: usize) -> Option<usize> {
    let limit = data.len().min(from.saturating_add(RESYNC_SCAN_LIMIT));
    (from..limit).find(|&at| valid_boundary(data, at))
}

/// An in-memory raw trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct RawTraceFile {
    /// The node that produced this file.
    pub node: NodeId,
    /// Local-clock tick rate (ticks per second) recorded for reference.
    pub tick_rate: u64,
    /// The records, in cut order.
    pub events: Vec<RawEvent>,
}

impl RawTraceFile {
    /// Builds a file wrapper around already-decoded events.
    pub fn new(node: NodeId, events: Vec<RawEvent>) -> RawTraceFile {
        RawTraceFile {
            node,
            tick_rate: TICKS_PER_SEC,
            events,
        }
    }

    /// Builds a file from the raw byte stream a [`crate::TraceBuffer`]
    /// produced.
    pub fn from_buffer_bytes(node: NodeId, body: &[u8]) -> Result<RawTraceFile> {
        let mut r = ByteReader::new(body);
        let mut events = Vec::new();
        while !r.is_empty() {
            events.push(RawEvent::decode(&mut r)?);
        }
        Ok(RawTraceFile::new(node, events))
    }

    /// Serializes header + records.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC);
        w.put_u32(VERSION);
        w.put_u16(self.node.raw());
        w.put_u64(self.tick_rate);
        w.put_u64(self.events.len() as u64);
        for e in &self.events {
            e.encode(&mut w)?;
        }
        Ok(w.into_bytes())
    }

    /// Parses a serialized raw trace file.
    ///
    /// Built on the zero-copy layer: [`crate::RawTraceView::open`]
    /// validates every record's bounds in one pass, then the owned
    /// events are materialized from borrowed views into an
    /// exactly-sized vector. Error behavior (including reported
    /// offsets) is identical to the pre-zero-copy decoder, which is
    /// kept as [`RawTraceFile::from_bytes_reference`] behind the
    /// `reference-decode` feature and compared byte-for-byte by the
    /// fast-vs-reference oracle.
    pub fn from_bytes(data: &[u8]) -> Result<RawTraceFile> {
        let view = crate::view::RawTraceView::open(data)?;
        let mut events = Vec::with_capacity(view.records);
        events.extend(view.events().map(|v| v.to_owned()));
        Ok(RawTraceFile {
            node: view.node,
            tick_rate: view.tick_rate,
            events,
        })
    }

    /// The pre-zero-copy strict decoder, kept verbatim as the
    /// differential baseline for `ute-verify`'s fast-vs-reference
    /// oracle. Decodes incrementally, copying each payload.
    #[cfg(feature = "reference-decode")]
    pub fn from_bytes_reference(data: &[u8]) -> Result<RawTraceFile> {
        let mut r = RawTraceReader::open(data)?;
        let cap = ute_core::codec::clamped_capacity(
            r.record_count as usize,
            crate::hookword::FIXED_PREFIX,
            data.len(),
        );
        let mut events = Vec::with_capacity(cap);
        while let Some(e) = r.next_event()? {
            events.push(e);
        }
        Ok(RawTraceFile {
            node: r.node,
            tick_rate: r.tick_rate,
            events,
        })
    }

    /// Salvage-mode parse: decodes as much of a damaged file as possible
    /// instead of stopping at the first corrupt byte. The header must be
    /// intact (a file whose header is gone carries no trustworthy
    /// records); after that, every decode failure triggers a bounded
    /// forward scan for the next valid hookword boundary
    /// ([`scan_resync`]), counting the skipped bytes, and the declared
    /// record count is treated as advisory — the decoder reads to the
    /// end of the data, so records past a truncated header count are
    /// recovered and a short file yields what it holds.
    ///
    /// Every salvage event is reported in the returned [`SalvageReport`]
    /// and mirrored into the `salvage/*` metrics.
    pub fn from_bytes_salvage(data: &[u8]) -> Result<(RawTraceFile, SalvageReport)> {
        let sv = crate::view::salvage_views(data)?;
        let mut events = Vec::with_capacity(sv.events.len());
        events.extend(sv.events.iter().map(|v| v.to_owned()));
        Ok((
            RawTraceFile {
                node: sv.node,
                tick_rate: sv.tick_rate,
                events,
            },
            sv.report,
        ))
    }

    /// The pre-zero-copy salvage decoder, kept verbatim (minus the
    /// metric side effects, which the production path already records)
    /// as the differential baseline for the fast-vs-reference oracle.
    #[cfg(feature = "reference-decode")]
    pub fn from_bytes_salvage_reference(data: &[u8]) -> Result<(RawTraceFile, SalvageReport)> {
        let rd = RawTraceReader::open(data)?;
        let (node, tick_rate, record_count) = (rd.node, rd.tick_rate, rd.record_count);
        let mut r = ByteReader::new(data);
        r.seek(HEADER_LEN as u64)?;
        let cap = ute_core::codec::clamped_capacity(
            record_count as usize,
            crate::hookword::FIXED_PREFIX,
            data.len(),
        );
        let mut events = Vec::with_capacity(cap);
        let mut report = SalvageReport::default();
        while !r.is_empty() {
            let at = r.pos();
            match RawEvent::decode(&mut r) {
                Ok(ev) => events.push(ev),
                Err(_) => {
                    report.records_skipped += 1;
                    match scan_resync(data, at as usize + 1) {
                        Some(next) => {
                            report.resyncs += 1;
                            report.bytes_skipped += next as u64 - at;
                            r.seek(next as u64)?;
                        }
                        None => {
                            report.truncated_tail = true;
                            report.bytes_skipped += data.len() as u64 - at;
                            break;
                        }
                    }
                }
            }
        }
        report.records = events.len() as u64;
        report.count_mismatch = report.records != record_count;
        Ok((
            RawTraceFile {
                node,
                tick_rate,
                events,
            },
            report,
        ))
    }

    /// Writes the file to disk.
    pub fn write_to(&self, path: &std::path::Path) -> Result<()> {
        std::fs::write(path, self.to_bytes()?)?;
        Ok(())
    }

    /// Reads a file from disk, memory-mapping it where supported (see
    /// [`crate::mmap::map_file`]) so decoding views never pays a
    /// read-into-buffer copy of the whole file.
    pub fn read_from(path: &std::path::Path) -> Result<RawTraceFile> {
        let _span = ute_obs::Span::enter("rawtrace", format!("read {}", path.display()));
        let data = crate::mmap::map_file(path)?;
        RawTraceFile::from_bytes(&data)
    }

    /// Reads a file from disk in salvage mode, memory-mapped where
    /// supported — the salvage resync scan runs directly on the mapping.
    pub fn read_from_salvage(path: &std::path::Path) -> Result<(RawTraceFile, SalvageReport)> {
        let _span = ute_obs::Span::enter("rawtrace", format!("salvage read {}", path.display()));
        let data = crate::mmap::map_file(path)?;
        RawTraceFile::from_bytes_salvage(&data)
    }

    /// The conventional per-node file name: `<prefix>.<node>.raw`.
    pub fn file_name(prefix: &str, node: NodeId) -> String {
        format!("{prefix}.{}.raw", node.raw())
    }
}

/// Streaming reader over a serialized raw trace file.
#[derive(Debug)]
pub struct RawTraceReader<'a> {
    /// The node that produced the file.
    pub node: NodeId,
    /// Recorded tick rate.
    pub tick_rate: u64,
    /// Declared number of records.
    pub record_count: u64,
    seen: u64,
    r: ByteReader<'a>,
}

impl<'a> RawTraceReader<'a> {
    /// Validates the header and positions at the first record.
    pub fn open(data: &'a [u8]) -> Result<RawTraceReader<'a>> {
        let mut r = ByteReader::new(data);
        let magic = r.get_bytes(8)?;
        if magic != MAGIC {
            return Err(UteError::corrupt("raw trace file: bad magic"));
        }
        let version = r.get_u32()?;
        if version != VERSION {
            return Err(UteError::VersionMismatch {
                profile: VERSION,
                file: version,
            });
        }
        let node = NodeId(r.get_u16()?);
        let tick_rate = r.get_u64()?;
        let record_count = r.get_u64()?;
        Ok(RawTraceReader {
            node,
            tick_rate,
            record_count,
            seen: 0,
            r,
        })
    }

    /// Reads the next record, or `None` after the declared count.
    pub fn next_event(&mut self) -> Result<Option<RawEvent>> {
        if self.seen >= self.record_count {
            return Ok(None);
        }
        let ev = RawEvent::decode(&mut self.r)?;
        self.seen += 1;
        Ok(Some(ev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_core::event::EventCode;
    use ute_core::time::LocalTime;

    fn sample_file() -> RawTraceFile {
        let events = (0..50)
            .map(|t| RawEvent::new(EventCode::Syscall, LocalTime(t * 10), vec![t as u8; 3]))
            .collect();
        RawTraceFile::new(NodeId(3), events)
    }

    #[test]
    fn round_trip_bytes() {
        let f = sample_file();
        let bytes = f.to_bytes().unwrap();
        let back = RawTraceFile::from_bytes(&bytes).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn round_trip_disk() {
        let dir = std::env::temp_dir().join("ute_rawtrace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(RawTraceFile::file_name("t", NodeId(3)));
        let f = sample_file();
        f.write_to(&path).unwrap();
        let back = RawTraceFile::read_from(&path).unwrap();
        assert_eq!(back, f);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_file().to_bytes().unwrap();
        bytes[0] = b'X';
        assert!(matches!(
            RawTraceFile::from_bytes(&bytes),
            Err(UteError::Corrupt { .. })
        ));
    }

    #[test]
    fn version_mismatch_reported() {
        let mut bytes = sample_file().to_bytes().unwrap();
        bytes[8] = 99; // version field
        assert!(matches!(
            RawTraceFile::from_bytes(&bytes),
            Err(UteError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn truncated_file_is_corrupt_not_panic() {
        let bytes = sample_file().to_bytes().unwrap();
        let cut = &bytes[..bytes.len() - 5];
        assert!(RawTraceFile::from_bytes(cut).is_err());
    }

    #[test]
    fn file_name_convention() {
        assert_eq!(RawTraceFile::file_name("run1", NodeId(2)), "run1.2.raw");
    }

    #[test]
    fn salvage_on_clean_file_is_lossless() {
        let f = sample_file();
        let bytes = f.to_bytes().unwrap();
        let (back, report) = RawTraceFile::from_bytes_salvage(&bytes).unwrap();
        assert_eq!(back, f);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.records, 50);
    }

    #[test]
    fn salvage_resyncs_past_a_corrupt_record() {
        let f = sample_file();
        let mut bytes = f.to_bytes().unwrap();
        // Destroy the hookword of record 10 (records are 15 bytes:
        // 12-byte prefix + 3-byte payload).
        let at = HEADER_LEN + 10 * 15;
        bytes[at..at + 4].copy_from_slice(&0xffff_ffffu32.to_le_bytes());
        let (back, report) = RawTraceFile::from_bytes_salvage(&bytes).unwrap();
        // Record 10 is lost, the rest recovered at the next boundary.
        assert_eq!(back.events.len(), 49);
        assert_eq!(report.records_skipped, 1);
        assert_eq!(report.resyncs, 1);
        assert_eq!(report.bytes_skipped, 15);
        assert!(report.count_mismatch);
        assert!(!report.truncated_tail);
        // Survivors are a subset of the originals, in order.
        assert_eq!(&back.events[..10], &f.events[..10]);
        assert_eq!(&back.events[10..], &f.events[11..]);
    }

    #[test]
    fn salvage_handles_truncated_tail() {
        let f = sample_file();
        let mut bytes = f.to_bytes().unwrap();
        let keep = bytes.len() - 7; // mid-record
        bytes.truncate(keep);
        let (back, report) = RawTraceFile::from_bytes_salvage(&bytes).unwrap();
        assert_eq!(back.events.len(), 49);
        assert!(report.truncated_tail);
        assert!(report.count_mismatch);
        assert_eq!(&back.events[..], &f.events[..49]);
    }

    #[test]
    fn salvage_handles_wraparound_overrun_splice() {
        // A wrapped buffer overran unflushed records: a span is spliced
        // out of the body, so the file resumes mid-record.
        let f = sample_file();
        let bytes = f.to_bytes().unwrap();
        let plan = ute_faults::FaultPlan::parse("3:overrun@100+40").unwrap();
        let damaged = plan.apply_to_file(3, bytes, HEADER_LEN).unwrap();
        let (back, report) = RawTraceFile::from_bytes_salvage(&damaged).unwrap();
        assert!(!back.events.is_empty());
        assert!(back.events.len() < 50);
        assert!(report.records_skipped >= 1);
        assert!(report.count_mismatch);
        // The format has no per-record checksum, so the join point can
        // fuse an intact hookword with later bytes into one plausible
        // "Frankenstein" record — but a single splice can fabricate at
        // most one such record; everything else must be an original, in
        // order.
        let mut oi = 0;
        let mut fabricated = 0;
        for ev in &back.events {
            match f.events[oi..].iter().position(|o| o == ev) {
                Some(p) => oi += p + 1,
                None => fabricated += 1,
            }
        }
        assert!(fabricated <= 1, "{fabricated} fabricated records");
    }

    #[test]
    fn salvage_gives_up_on_destroyed_header() {
        let f = sample_file();
        let mut bytes = f.to_bytes().unwrap();
        bytes[0] = b'X';
        assert!(RawTraceFile::from_bytes_salvage(&bytes).is_err());
    }

    #[test]
    fn valid_boundary_rejects_payload_noise() {
        // A boundary candidate must have a parseable hookword AND lead
        // to another boundary (or end-of-data).
        let f = sample_file();
        let bytes = f.to_bytes().unwrap();
        assert!(valid_boundary(&bytes, HEADER_LEN));
        assert!(valid_boundary(&bytes, HEADER_LEN + 15));
        // Offsets inside the fixed prefix are u64 timestamp bytes —
        // small integers whose upper half decodes to no known event.
        assert!(!valid_boundary(&bytes, HEADER_LEN + 4));
        assert!(!valid_boundary(&bytes, bytes.len() - 3));
    }

    #[test]
    fn buffer_bytes_round_trip() {
        use crate::buffer::{TraceBuffer, TraceOptions};
        let mut b = TraceBuffer::new(TraceOptions::default());
        for t in 0..20 {
            b.cut(
                &RawEvent::new(EventCode::PageFault, LocalTime(t), vec![]),
                false,
            )
            .unwrap();
        }
        let f = RawTraceFile::from_buffer_bytes(NodeId(0), &b.finish()).unwrap();
        assert_eq!(f.events.len(), 20);
    }
}
