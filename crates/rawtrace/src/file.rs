//! The on-disk raw trace file — one per SMP node (§2.0: "multiple raw
//! trace files, one on each node").
//!
//! Layout: a small header (magic, format version, node id, tick rate,
//! record count) followed by the concatenated raw records in the order
//! they were cut. Records carry *local* timestamps; nothing in this file
//! is clock-adjusted.

use ute_core::codec::{ByteReader, ByteWriter};
use ute_core::error::{Result, UteError};
use ute_core::ids::NodeId;
use ute_core::time::TICKS_PER_SEC;

use crate::record::RawEvent;

/// Magic bytes opening every raw trace file.
pub const MAGIC: &[u8; 8] = b"UTERAW\0\0";

/// Current raw-format version.
pub const VERSION: u32 = 1;

/// An in-memory raw trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct RawTraceFile {
    /// The node that produced this file.
    pub node: NodeId,
    /// Local-clock tick rate (ticks per second) recorded for reference.
    pub tick_rate: u64,
    /// The records, in cut order.
    pub events: Vec<RawEvent>,
}

impl RawTraceFile {
    /// Builds a file wrapper around already-decoded events.
    pub fn new(node: NodeId, events: Vec<RawEvent>) -> RawTraceFile {
        RawTraceFile {
            node,
            tick_rate: TICKS_PER_SEC,
            events,
        }
    }

    /// Builds a file from the raw byte stream a [`crate::TraceBuffer`]
    /// produced.
    pub fn from_buffer_bytes(node: NodeId, body: &[u8]) -> Result<RawTraceFile> {
        let mut r = ByteReader::new(body);
        let mut events = Vec::new();
        while !r.is_empty() {
            events.push(RawEvent::decode(&mut r)?);
        }
        Ok(RawTraceFile::new(node, events))
    }

    /// Serializes header + records.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC);
        w.put_u32(VERSION);
        w.put_u16(self.node.raw());
        w.put_u64(self.tick_rate);
        w.put_u64(self.events.len() as u64);
        for e in &self.events {
            e.encode(&mut w)?;
        }
        Ok(w.into_bytes())
    }

    /// Parses a serialized raw trace file.
    pub fn from_bytes(data: &[u8]) -> Result<RawTraceFile> {
        let mut r = RawTraceReader::open(data)?;
        let cap = ute_core::codec::clamped_capacity(
            r.record_count as usize,
            crate::hookword::FIXED_PREFIX,
            data.len(),
        );
        let mut events = Vec::with_capacity(cap);
        while let Some(e) = r.next_event()? {
            events.push(e);
        }
        Ok(RawTraceFile {
            node: r.node,
            tick_rate: r.tick_rate,
            events,
        })
    }

    /// Writes the file to disk.
    pub fn write_to(&self, path: &std::path::Path) -> Result<()> {
        std::fs::write(path, self.to_bytes()?)?;
        Ok(())
    }

    /// Reads a file from disk.
    pub fn read_from(path: &std::path::Path) -> Result<RawTraceFile> {
        let data = std::fs::read(path)?;
        RawTraceFile::from_bytes(&data)
    }

    /// The conventional per-node file name: `<prefix>.<node>.raw`.
    pub fn file_name(prefix: &str, node: NodeId) -> String {
        format!("{prefix}.{}.raw", node.raw())
    }
}

/// Streaming reader over a serialized raw trace file.
#[derive(Debug)]
pub struct RawTraceReader<'a> {
    /// The node that produced the file.
    pub node: NodeId,
    /// Recorded tick rate.
    pub tick_rate: u64,
    /// Declared number of records.
    pub record_count: u64,
    seen: u64,
    r: ByteReader<'a>,
}

impl<'a> RawTraceReader<'a> {
    /// Validates the header and positions at the first record.
    pub fn open(data: &'a [u8]) -> Result<RawTraceReader<'a>> {
        let mut r = ByteReader::new(data);
        let magic = r.get_bytes(8)?;
        if magic != MAGIC {
            return Err(UteError::corrupt("raw trace file: bad magic"));
        }
        let version = r.get_u32()?;
        if version != VERSION {
            return Err(UteError::VersionMismatch {
                profile: VERSION,
                file: version,
            });
        }
        let node = NodeId(r.get_u16()?);
        let tick_rate = r.get_u64()?;
        let record_count = r.get_u64()?;
        Ok(RawTraceReader {
            node,
            tick_rate,
            record_count,
            seen: 0,
            r,
        })
    }

    /// Reads the next record, or `None` after the declared count.
    pub fn next_event(&mut self) -> Result<Option<RawEvent>> {
        if self.seen >= self.record_count {
            return Ok(None);
        }
        let ev = RawEvent::decode(&mut self.r)?;
        self.seen += 1;
        Ok(Some(ev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_core::event::EventCode;
    use ute_core::time::LocalTime;

    fn sample_file() -> RawTraceFile {
        let events = (0..50)
            .map(|t| RawEvent::new(EventCode::Syscall, LocalTime(t * 10), vec![t as u8; 3]))
            .collect();
        RawTraceFile::new(NodeId(3), events)
    }

    #[test]
    fn round_trip_bytes() {
        let f = sample_file();
        let bytes = f.to_bytes().unwrap();
        let back = RawTraceFile::from_bytes(&bytes).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn round_trip_disk() {
        let dir = std::env::temp_dir().join("ute_rawtrace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(RawTraceFile::file_name("t", NodeId(3)));
        let f = sample_file();
        f.write_to(&path).unwrap();
        let back = RawTraceFile::read_from(&path).unwrap();
        assert_eq!(back, f);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_file().to_bytes().unwrap();
        bytes[0] = b'X';
        assert!(matches!(
            RawTraceFile::from_bytes(&bytes),
            Err(UteError::Corrupt { .. })
        ));
    }

    #[test]
    fn version_mismatch_reported() {
        let mut bytes = sample_file().to_bytes().unwrap();
        bytes[8] = 99; // version field
        assert!(matches!(
            RawTraceFile::from_bytes(&bytes),
            Err(UteError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn truncated_file_is_corrupt_not_panic() {
        let bytes = sample_file().to_bytes().unwrap();
        let cut = &bytes[..bytes.len() - 5];
        assert!(RawTraceFile::from_bytes(cut).is_err());
    }

    #[test]
    fn file_name_convention() {
        assert_eq!(RawTraceFile::file_name("run1", NodeId(2)), "run1.2.raw");
    }

    #[test]
    fn buffer_bytes_round_trip() {
        use crate::buffer::{TraceBuffer, TraceOptions};
        let mut b = TraceBuffer::new(TraceOptions::default());
        for t in 0..20 {
            b.cut(
                &RawEvent::new(EventCode::PageFault, LocalTime(t), vec![]),
                false,
            )
            .unwrap();
        }
        let f = RawTraceFile::from_buffer_bytes(NodeId(0), &b.finish()).unwrap();
        assert_eq!(f.events.len(), 20);
    }
}
