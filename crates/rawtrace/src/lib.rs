//! # ute-rawtrace — the raw event trace substrate
//!
//! The paper uses "the native trace facility in the IBM SP systems ...
//! capable of capturing a sequential flow of time-stamped events to provide
//! a fine or coarse level of detail on system and user activities in a
//! single stream" (§2.0). This crate is that facility's stand-in:
//!
//! * [`hookword`] — the one-word record header identifying event type and
//!   record length (§2.1).
//! * [`record`] — raw event records (hookword + timestamp + payload) and
//!   the typed payloads cut by the wrappers: thread dispatch, global-clock
//!   samples, markers, and MPI call arguments.
//! * [`buffer`] — the per-node trace buffer with configurable size, event
//!   enable mask, delayed start, and flush accounting.
//! * [`mod@file`] — the on-disk raw trace file, one per node.
//! * [`view`] — zero-copy decoding: validate record bounds once, then
//!   hand out borrowed [`RawEventView`]s instead of copying per record;
//!   salvage resync runs on the same views.
//! * [`mmap`] — read-only `mmap(2)` file ingestion (64-bit Linux, with a
//!   portable `fs::read` fallback) feeding the view decoder.
//! * [`facility`] — the per-node tracing handle the simulator (and a
//!   traced program) uses to cut records; it owns the message sequence
//!   numbers that let utilities match sends with receives.
//! * [`cost`] — the three-part cost model of cutting a record (§2.1).

pub mod buffer;
pub mod cost;
pub mod facility;
pub mod file;
pub mod hookword;
pub mod mmap;
pub mod record;
pub mod view;

pub use buffer::{BufferMode, TraceBuffer, TraceOptions};
pub use facility::TraceFacility;
pub use file::{RawTraceFile, RawTraceReader, SalvageReport};
pub use hookword::Hookword;
pub use mmap::{map_file, FileBytes};
pub use record::{
    ClockPayload, DispatchPayload, MarkerDefPayload, MarkerPayload, MpiPayload, RawEvent,
};
pub use view::{decode_view, salvage_views, RawEventView, RawTraceView, SalvagedViews};
