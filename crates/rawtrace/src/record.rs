//! Raw event records and their typed payloads.
//!
//! A raw record is `hookword ‖ local timestamp ‖ payload`. The payload
//! layout depends on the event type; this module defines the payloads the
//! wrappers cut. §2.1 describes a typical record as "three words of data in
//! addition to a one-word record header ... and a one-word timestamp" —
//! our payloads are in that ballpark (dispatch: 8 bytes, MPI: 24 bytes).

use ute_core::codec::{ByteReader, ByteWriter};
use ute_core::error::Result;
use ute_core::event::EventCode;
use ute_core::ids::{CpuId, LogicalThreadId};
use ute_core::time::{LocalTime, Time};

use crate::hookword::Hookword;

/// One raw trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawEvent {
    /// The event type.
    pub code: EventCode,
    /// Local-clock timestamp at which the event was cut.
    pub timestamp: LocalTime,
    /// Type-specific payload bytes.
    pub payload: Vec<u8>,
}

impl RawEvent {
    /// Builds an event with a raw payload.
    pub fn new(code: EventCode, timestamp: LocalTime, payload: Vec<u8>) -> RawEvent {
        RawEvent {
            code,
            timestamp,
            payload,
        }
    }

    /// Total encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        crate::hookword::FIXED_PREFIX + self.payload.len()
    }

    /// Appends the record to a writer.
    pub fn encode(&self, w: &mut ByteWriter) -> Result<()> {
        let hook = Hookword::new(self.code, self.payload.len())?;
        w.put_u32(hook.to_u32());
        w.put_u64(self.timestamp.ticks());
        w.put_bytes(&self.payload);
        Ok(())
    }

    /// Reads one record from a reader — the owned layer over the
    /// zero-copy [`crate::view::decode_view`], which holds the single
    /// copy of the bounds rules.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<RawEvent> {
        Ok(crate::view::decode_view(r)?.to_owned())
    }
}

/// Payload of [`EventCode::ThreadDispatch`] / [`EventCode::ThreadUndispatch`]:
/// which thread went on/off which processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchPayload {
    /// The thread being (un)dispatched.
    pub thread: LogicalThreadId,
    /// The processor involved.
    pub cpu: CpuId,
}

impl DispatchPayload {
    /// Encodes to payload bytes.
    pub fn to_bytes(self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(4);
        w.put_u16(self.thread.raw());
        w.put_u16(self.cpu.raw());
        w.into_bytes()
    }

    /// Decodes from payload bytes.
    pub fn from_bytes(b: &[u8]) -> Result<DispatchPayload> {
        let mut r = ByteReader::new(b);
        Ok(DispatchPayload {
            thread: LogicalThreadId(r.get_u16()?),
            cpu: CpuId(r.get_u16()?),
        })
    }
}

/// Payload of [`EventCode::GlobalClock`]: the global timestamp sampled by
/// the node's clock thread. The paired local timestamp is the record's own
/// timestamp field, so the pair (G, L) is exactly one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockPayload {
    /// The switch-adapter global timestamp.
    pub global: Time,
}

impl ClockPayload {
    /// Encodes to payload bytes.
    pub fn to_bytes(self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(8);
        w.put_u64(self.global.ticks());
        w.into_bytes()
    }

    /// Decodes from payload bytes.
    pub fn from_bytes(b: &[u8]) -> Result<ClockPayload> {
        let mut r = ByteReader::new(b);
        Ok(ClockPayload {
            global: Time(r.get_u64()?),
        })
    }
}

/// Payload of [`EventCode::MarkerDef`]: a user-marker string definition and
/// the task-local identifier the tracing library assigned "without any
/// cross-task communication" (§3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkerDefPayload {
    /// Task-local marker id (NOT unique across tasks — the convert utility
    /// re-assigns unique ids, §3.1).
    pub local_id: u32,
    /// The defining task's MPI rank (ids are task-local).
    pub rank: u32,
    /// The user-specified marker string.
    pub name: String,
}

impl MarkerDefPayload {
    /// Encodes to payload bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(10 + self.name.len());
        w.put_u32(self.local_id);
        w.put_u32(self.rank);
        w.put_str(&self.name);
        w.into_bytes()
    }

    /// Decodes from payload bytes.
    pub fn from_bytes(b: &[u8]) -> Result<MarkerDefPayload> {
        let mut r = ByteReader::new(b);
        Ok(MarkerDefPayload {
            local_id: r.get_u32()?,
            rank: r.get_u32()?,
            name: r.get_str()?,
        })
    }
}

/// Payload of [`EventCode::MarkerBegin`] / [`EventCode::MarkerEnd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkerPayload {
    /// The thread entering/leaving the marked region.
    pub thread: LogicalThreadId,
    /// Task-local marker id from the matching [`MarkerDefPayload`].
    pub local_id: u32,
    /// Instruction address of the marker call site, "suitable for a source
    /// code browser" (§2.3.2).
    pub address: u64,
}

impl MarkerPayload {
    /// Encodes to payload bytes.
    pub fn to_bytes(self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(14);
        w.put_u16(self.thread.raw());
        w.put_u32(self.local_id);
        w.put_u64(self.address);
        w.into_bytes()
    }

    /// Decodes from payload bytes.
    pub fn from_bytes(b: &[u8]) -> Result<MarkerPayload> {
        let mut r = ByteReader::new(b);
        Ok(MarkerPayload {
            thread: LogicalThreadId(r.get_u16()?),
            local_id: r.get_u32()?,
            address: r.get_u64()?,
        })
    }
}

/// Payload of MPI begin/end events: the call arguments the wrappers record.
///
/// For point-to-point calls `peer`/`tag`/`bytes`/`seq` are meaningful; the
/// tracing library "adds a unique sequence number to each point-to-point
/// message passing event record so that utilities can match sends with
/// corresponding receives" (§2.1). For collectives `bytes` is the per-task
/// contribution and `peer` is the root (or `u32::MAX` for rootless ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpiPayload {
    /// The thread making the call.
    pub thread: LogicalThreadId,
    /// Calling task's MPI rank.
    pub rank: u32,
    /// Peer rank (p2p), root rank (rooted collective), or `u32::MAX`.
    pub peer: u32,
    /// Message tag (p2p) or 0.
    pub tag: u32,
    /// Payload bytes sent/received by this task in this call.
    pub bytes: u64,
    /// Point-to-point sequence number; 0 for non-p2p calls.
    pub seq: u64,
    /// Instruction address of the call site.
    pub address: u64,
}

impl MpiPayload {
    /// A payload with every argument zeroed except thread and rank.
    pub fn bare(thread: LogicalThreadId, rank: u32) -> MpiPayload {
        MpiPayload {
            thread,
            rank,
            peer: u32::MAX,
            tag: 0,
            bytes: 0,
            seq: 0,
            address: 0,
        }
    }

    /// Encodes to payload bytes.
    pub fn to_bytes(self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(38);
        w.put_u16(self.thread.raw());
        w.put_u32(self.rank);
        w.put_u32(self.peer);
        w.put_u32(self.tag);
        w.put_u64(self.bytes);
        w.put_u64(self.seq);
        w.put_u64(self.address);
        w.into_bytes()
    }

    /// Decodes from payload bytes.
    pub fn from_bytes(b: &[u8]) -> Result<MpiPayload> {
        let mut r = ByteReader::new(b);
        Ok(MpiPayload {
            thread: LogicalThreadId(r.get_u16()?),
            rank: r.get_u32()?,
            peer: r.get_u32()?,
            tag: r.get_u32()?,
            bytes: r.get_u64()?,
            seq: r.get_u64()?,
            address: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_core::error::UteError;
    use ute_core::event::MpiOp;

    #[test]
    fn raw_event_round_trip() {
        let ev = RawEvent::new(
            EventCode::MpiBegin(MpiOp::Send),
            LocalTime(123_456_789),
            vec![1, 2, 3, 4, 5],
        );
        let mut w = ByteWriter::new();
        ev.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), ev.encoded_len());
        let mut r = ByteReader::new(&bytes);
        assert_eq!(RawEvent::decode(&mut r).unwrap(), ev);
        assert!(r.is_empty());
    }

    #[test]
    fn decode_reports_offset_of_bad_hookword() {
        let good = RawEvent::new(EventCode::TraceStart, LocalTime(1), vec![]);
        let mut w = ByteWriter::new();
        good.encode(&mut w).unwrap();
        w.put_u32(0x0abc_0010); // corrupt second record
        w.put_u64(0);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        RawEvent::decode(&mut r).unwrap();
        match RawEvent::decode(&mut r).unwrap_err() {
            UteError::Corrupt { offset, .. } => assert_eq!(offset, Some(12)),
            other => panic!("wrong error {other}"),
        }
    }

    #[test]
    fn dispatch_payload_round_trip() {
        let p = DispatchPayload {
            thread: LogicalThreadId(42),
            cpu: CpuId(7),
        };
        assert_eq!(DispatchPayload::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn clock_payload_round_trip() {
        let p = ClockPayload {
            global: Time(0xdead_beef_cafe),
        };
        assert_eq!(ClockPayload::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn marker_payloads_round_trip() {
        let d = MarkerDefPayload {
            local_id: 3,
            rank: 1,
            name: "Initial Phase".into(),
        };
        assert_eq!(MarkerDefPayload::from_bytes(&d.to_bytes()).unwrap(), d);
        let m = MarkerPayload {
            thread: LogicalThreadId(1),
            local_id: 3,
            address: 0x1000_2000,
        };
        assert_eq!(MarkerPayload::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn mpi_payload_round_trip() {
        let p = MpiPayload {
            thread: LogicalThreadId(0),
            rank: 3,
            peer: 1,
            tag: 99,
            bytes: 1 << 20,
            seq: 77,
            address: 0xabcd,
        };
        assert_eq!(MpiPayload::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn truncated_payload_rejected() {
        let p = MpiPayload::bare(LogicalThreadId(0), 1).to_bytes();
        assert!(MpiPayload::from_bytes(&p[..p.len() - 1]).is_err());
        assert!(DispatchPayload::from_bytes(&[1]).is_err());
    }
}
