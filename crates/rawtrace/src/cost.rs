//! The three-part cost model of cutting a trace record (§2.1).
//!
//! "The cost of cutting an ordinary trace record has three parts. The first
//! is the cost of testing whether the event is enabled and then calling the
//! trace buffer insertion routine. The second is the cost of the trace
//! buffer insertion routine. The third is the cost of wrapper routines in
//! the tracing library, whose cost varies depending on individual MPI
//! wrappers. ... the average cost of cutting a trace record is fairly small
//! (a small fraction of one micro second) for the first two parts."
//!
//! The cluster simulator charges these modelled costs to the traced thread
//! so tracing overhead perturbs the simulated run the way real tracing
//! perturbs a real run.

use ute_core::time::Duration;

/// Modelled per-record costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Part 1: enable-mask test + call into the insertion routine.
    pub test_cost: Duration,
    /// Part 2: the trace-buffer insertion routine itself.
    pub insert_cost: Duration,
    /// Part 3: the wrapper routine around an MPI call (varies per wrapper;
    /// this is the average).
    pub wrapper_cost: Duration,
}

impl Default for CostModel {
    fn default() -> Self {
        // "a small fraction of one micro second" for parts 1+2 on a
        // then-modern PowerPC: model 50 ns + 150 ns, with a 300 ns wrapper.
        CostModel {
            test_cost: Duration(50),
            insert_cost: Duration(150),
            wrapper_cost: Duration(300),
        }
    }
}

impl CostModel {
    /// A free tracing facility (for tests that want undisturbed timing).
    pub fn free() -> CostModel {
        CostModel {
            test_cost: Duration::ZERO,
            insert_cost: Duration::ZERO,
            wrapper_cost: Duration::ZERO,
        }
    }

    /// Cost of cutting one enabled non-wrapper record (parts 1+2).
    pub fn cut(&self) -> Duration {
        self.test_cost + self.insert_cost
    }

    /// Cost of a record cut from inside an MPI wrapper (parts 1+2+3).
    pub fn cut_wrapped(&self) -> Duration {
        self.test_cost + self.insert_cost + self.wrapper_cost
    }

    /// Cost of testing a *disabled* event (part 1's test only).
    pub fn test_only(&self) -> Duration {
        self.test_cost
    }
}

/// Running totals of tracing overhead charged to a node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostLedger {
    /// Records actually inserted.
    pub records_cut: u64,
    /// Events tested but found disabled.
    pub tests_rejected: u64,
    /// Total modelled time charged.
    pub total: Duration,
}

impl CostLedger {
    /// Charges one enabled cut.
    pub fn charge_cut(&mut self, model: &CostModel, wrapped: bool) {
        self.records_cut += 1;
        self.total += if wrapped {
            model.cut_wrapped()
        } else {
            model.cut()
        };
    }

    /// Charges one disabled test.
    pub fn charge_rejected(&mut self, model: &CostModel) {
        self.tests_rejected += 1;
        self.total += model.test_only();
    }

    /// Mean overhead per cut record, if any were cut.
    pub fn mean_per_record(&self) -> Option<Duration> {
        self.total
            .ticks()
            .checked_div(self.records_cut)
            .map(Duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_are_submicrosecond_for_parts_1_and_2() {
        let m = CostModel::default();
        assert!(
            m.cut() < Duration::from_micros(1),
            "paper: fraction of a µs"
        );
        assert!(m.cut_wrapped() > m.cut());
        assert!(m.test_only() < m.cut());
    }

    #[test]
    fn ledger_accumulates() {
        let m = CostModel::default();
        let mut l = CostLedger::default();
        l.charge_cut(&m, false);
        l.charge_cut(&m, true);
        l.charge_rejected(&m);
        assert_eq!(l.records_cut, 2);
        assert_eq!(l.tests_rejected, 1);
        assert_eq!(l.total, m.cut() + m.cut_wrapped() + m.test_only());
        assert!(l.mean_per_record().unwrap() >= m.cut());
    }

    #[test]
    fn empty_ledger_has_no_mean() {
        assert_eq!(CostLedger::default().mean_per_record(), None);
    }
}
