//! The hookword: "a one-word record header ... which identifies the event
//! type and record length" (§2.1).
//!
//! Layout (32 bits): event type in the upper 16 bits, total record length
//! in bytes (hookword + timestamp + payload) in the lower 16 bits. The
//! fixed part of every record is the 4-byte hookword plus the 8-byte local
//! timestamp, so the minimum legal length is 12 and the payload may be up
//! to `u16::MAX − 12` bytes.

use ute_core::error::{Result, UteError};
use ute_core::event::EventCode;

/// Size of the fixed record prefix: hookword (4) + timestamp (8).
pub const FIXED_PREFIX: usize = 12;

/// Maximum payload bytes a single record can carry.
pub const MAX_PAYLOAD: usize = u16::MAX as usize - FIXED_PREFIX;

/// A decoded hookword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hookword {
    /// The record's event type.
    pub code: EventCode,
    /// Total record length in bytes, including the hookword itself and the
    /// timestamp.
    pub length: u16,
}

impl Hookword {
    /// Builds a hookword for a record with `payload_len` payload bytes.
    pub fn new(code: EventCode, payload_len: usize) -> Result<Hookword> {
        if payload_len > MAX_PAYLOAD {
            return Err(UteError::Invalid(format!(
                "raw record payload of {payload_len} bytes exceeds maximum {MAX_PAYLOAD}"
            )));
        }
        Ok(Hookword {
            code,
            length: (FIXED_PREFIX + payload_len) as u16,
        })
    }

    /// Packs into the on-disk word.
    pub fn to_u32(self) -> u32 {
        ((self.code.to_u16() as u32) << 16) | self.length as u32
    }

    /// Unpacks the on-disk word, validating both halves.
    pub fn from_u32(word: u32) -> Result<Hookword> {
        let raw_code = (word >> 16) as u16;
        let length = (word & 0xffff) as u16;
        let code = EventCode::from_u16(raw_code).ok_or_else(|| {
            UteError::corrupt(format!("hookword: unknown event type {raw_code:#06x}"))
        })?;
        if (length as usize) < FIXED_PREFIX {
            return Err(UteError::corrupt(format!(
                "hookword: record length {length} shorter than fixed prefix"
            )));
        }
        Ok(Hookword { code, length })
    }

    /// Payload bytes that follow the fixed prefix.
    pub fn payload_len(self) -> usize {
        self.length as usize - FIXED_PREFIX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_core::event::MpiOp;

    #[test]
    fn round_trip() {
        let codes = [
            EventCode::TraceStart,
            EventCode::ThreadDispatch,
            EventCode::GlobalClock,
            EventCode::MpiBegin(MpiOp::Send),
            EventCode::MpiEnd(MpiOp::Allreduce),
        ];
        for code in codes {
            for payload in [0usize, 4, 16, 255, MAX_PAYLOAD] {
                let h = Hookword::new(code, payload).unwrap();
                let back = Hookword::from_u32(h.to_u32()).unwrap();
                assert_eq!(back, h);
                assert_eq!(back.payload_len(), payload);
            }
        }
    }

    #[test]
    fn oversized_payload_rejected() {
        assert!(Hookword::new(EventCode::TraceStart, MAX_PAYLOAD + 1).is_err());
    }

    #[test]
    fn corrupt_words_rejected() {
        // Unknown event type.
        assert!(Hookword::from_u32(0x0abc_0010).is_err());
        // Length below fixed prefix.
        let bad = ((EventCode::TraceStart.to_u16() as u32) << 16) | 4;
        assert!(Hookword::from_u32(bad).is_err());
    }
}
