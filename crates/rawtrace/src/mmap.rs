//! Read-only file mapping with a portable fallback.
//!
//! [`map_file`] memory-maps a file on 64-bit Linux through a direct
//! `mmap(2)` FFI binding (no external crates — the same pattern as
//! `ute-profile`'s `clock_gettime` binding) and falls back to
//! [`std::fs::read`] on other targets, for empty files, or whenever the
//! map call fails. The returned [`FileBytes`] derefs to `&[u8]` either
//! way, so decode layers never know the difference.
//!
//! Validation contract: nothing here inspects the bytes. A mapped raw
//! trace file is handed to [`crate::RawTraceView::open`], which
//! bounds-checks every record against the mapping's length exactly once;
//! after that, borrowed views never touch memory outside the mapping.
//! The mapped file must not be truncated while the map lives — UTE
//! writes trace files once and never rewrites them in place (the atomic
//! artifact store replaces whole files by rename).

use std::ops::Deref;
use std::path::Path;

use ute_core::error::Result;

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
mod sys {
    pub const PROT_READ: i32 = 0x1;
    pub const MAP_PRIVATE: i32 = 0x2;

    extern "C" {
        pub fn mmap(
            addr: *mut u8,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        pub fn munmap(addr: *mut u8, length: usize) -> i32;
    }
}

/// An owning read-only memory mapping.
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
pub struct Mapping {
    ptr: *mut u8,
    len: usize,
}

// The mapping is read-only for its entire lifetime; the pointer is not
// aliased mutably anywhere.
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
unsafe impl Send for Mapping {}
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
unsafe impl Sync for Mapping {}

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
impl Deref for Mapping {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // Safety: ptr/len came from a successful PROT_READ mmap that
        // lives until Drop; the region is never remapped or unmapped
        // while borrowed.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
impl Drop for Mapping {
    fn drop(&mut self) {
        // Safety: exactly one munmap for the mmap that created us.
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

/// File contents as either a live memory map or an owned buffer.
pub enum FileBytes {
    /// A read-only `mmap(2)` of the whole file.
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    Mapped(Mapping),
    /// The portable fallback: the file read into memory.
    Owned(Vec<u8>),
}

impl Deref for FileBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
            FileBytes::Mapped(m) => m,
            FileBytes::Owned(v) => v,
        }
    }
}

/// Opens a file as [`FileBytes`]: mapped where supported, read otherwise.
pub fn map_file(path: &Path) -> Result<FileBytes> {
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    {
        use std::os::unix::io::AsRawFd;
        if let Ok(file) = std::fs::File::open(path) {
            if let Ok(meta) = file.metadata() {
                let len = meta.len() as usize;
                // mmap rejects zero-length maps; tiny files gain nothing.
                if len > 0 {
                    // Safety: anonymous-address read-only private map of a
                    // file we hold open; checked for MAP_FAILED below. The
                    // fd may close after mmap returns — the map persists.
                    let ptr = unsafe {
                        sys::mmap(
                            std::ptr::null_mut(),
                            len,
                            sys::PROT_READ,
                            sys::MAP_PRIVATE,
                            file.as_raw_fd(),
                            0,
                        )
                    };
                    if !ptr.is_null() && ptr as isize != -1 {
                        ute_obs::counter("rawtrace/mmap_files").inc();
                        ute_obs::counter("rawtrace/mmap_bytes").add(len as u64);
                        return Ok(FileBytes::Mapped(Mapping { ptr, len }));
                    }
                }
            }
        }
        // Any failure above falls through to the portable read.
    }
    Ok(FileBytes::Owned(std::fs::read(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapped_bytes_match_read_bytes() {
        let dir = std::env::temp_dir().join("ute_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.bin");
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let mapped = map_file(&path).unwrap();
        assert_eq!(&*mapped, &payload[..]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_falls_back_to_owned() {
        let dir = std::env::temp_dir().join("ute_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let bytes = map_file(&path).unwrap();
        assert!(bytes.is_empty());
        assert!(matches!(bytes, FileBytes::Owned(_)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(map_file(Path::new("/nonexistent/ute/file.raw")).is_err());
    }
}
