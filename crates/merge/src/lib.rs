//! # ute-merge — the merge / `slogmerge` utility (§2.2, §3.1, §3.3)
//!
//! Merges per-node interval files into one globally-timed interval file:
//!
//! 1. **Alignment** — "the first global clock records in individual trace
//!    files are used to determine the starting point in time for records
//!    in each trace file";
//! 2. **Drift adjustment** — subsequent clock records give the
//!    global-to-local ratio `R` (RMS of slope segments by default; see
//!    [`ute_clock::ratio`] for the alternatives), and every record's
//!    local start `S` and duration `D` become `R·S`-style global values;
//! 3. **K-way merge** — "a balanced tree in which each tree node holds
//!    the pointer to the next interval in the corresponding interval
//!    file. Tree nodes are sorted by end time";
//! 4. **Unification pseudo-intervals** — "the merge utility provides
//!    additional zero-duration continuation intervals at the beginning of
//!    each frame" representing the nested outer states open there (§3.3),
//!    so a viewer can jump into any frame and still know the enclosing
//!    states;
//! 5. Optionally, **SLOG conversion** ([`merger::slogmerge`]) — the same
//!    merge pipeline emitting a [`ute_slog::SlogFile`] for visualization.

pub mod clockfit;
pub mod kway;
pub mod merger;
pub mod shard;
pub mod stream;

pub use clockfit::{
    clock_samples_of, extract_clock_samples, fit_node, fit_node_intervals, NodeFit,
};
pub use kway::{BalancedTreeMerge, LoserTreeMerge, MergeSource, NaiveMerge};
pub use merger::{
    absorb_file_header, absorb_header_tables, adjust_intervals, adjust_node, degrade_node,
    gap_record, merge_files, salvage_warn, slogmerge, write_merged_stream, IvSource, MergeOptions,
    MergeOutput, MergeStats,
};
pub use shard::{merge_sharded, plan_boundaries, split_stream};
pub use stream::{ReorderBuffer, REORDER_WINDOW};
