//! Per-node clock fitting from the CLOCK records embedded in interval
//! files.
//!
//! The convert utility carries every global-clock record through as a
//! zero-duration `CLOCK` interval whose `start` is the local timestamp
//! and whose `globalTime` field is the paired global timestamp. This
//! module extracts those pairs, optionally filters the §5 deschedule
//! outliers, and fits the node's [`ClockFit`].

use ute_clock::filter::filter_outliers_default;
use ute_clock::ratio::{ClockFit, PiecewiseFit, RatioEstimator};
use ute_clock::sample::ClockSample;
use ute_core::error::{Result, UteError};
use ute_core::time::{Duration, LocalTime, Time};
use ute_format::file::IntervalFileReader;
use ute_format::profile::Profile;
use ute_format::state::StateCode;

/// A node's fitted clock mapping: a single global ratio, or (§2.2's
/// alternative) one ratio per slope segment.
#[derive(Debug, Clone)]
pub enum FitKind {
    /// One linear mapping for the whole trace.
    Linear(ClockFit),
    /// Per-segment ratios: "this approach effectively partitions the
    /// total elapsed time into n segments, each of which has its own
    /// global to local clock ratio".
    Piecewise(PiecewiseFit),
}

impl FitKind {
    /// Maps a local timestamp to the global axis.
    pub fn adjust(&self, local: LocalTime) -> Time {
        match self {
            FitKind::Linear(f) => f.adjust(local),
            FitKind::Piecewise(f) => f.adjust(local),
        }
    }

    /// Scales a local duration starting at `local` to the global axis.
    pub fn adjust_duration(&self, local: LocalTime, d: Duration) -> Duration {
        match self {
            FitKind::Linear(f) => f.adjust_duration(d),
            FitKind::Piecewise(f) => f.adjust_duration(local, d),
        }
    }

    /// The effective single ratio, for reporting (piecewise reports the
    /// mean of its segment ratios).
    pub fn ratio(&self) -> f64 {
        match self {
            FitKind::Linear(f) => f.ratio,
            FitKind::Piecewise(_) => f64::NAN,
        }
    }
}

/// A node's fitted clock mapping.
#[derive(Debug, Clone)]
pub struct NodeFit {
    /// The node this fit belongs to.
    pub node: u16,
    /// The local→global mapping.
    pub fit: FitKind,
    /// How many clock samples survived filtering.
    pub samples_used: usize,
    /// Largest |adjusted − true global| over the samples the fit was
    /// computed from, in ticks (the fit's worst-case residual).
    pub max_residual: u64,
}

/// The (G, L) pair carried by a CLOCK record, or `None` for any other
/// record. One extraction path for readers and in-memory streams.
fn clock_sample(
    iv: &ute_format::record::Interval,
    profile: &Profile,
) -> Result<Option<ClockSample>> {
    if iv.itype.state != StateCode::CLOCK {
        return Ok(None);
    }
    let g = iv
        .extra(profile, "globalTime")
        .and_then(|v| v.as_uint())
        .ok_or_else(|| UteError::corrupt("CLOCK record without globalTime"))?;
    Ok(Some(ClockSample::new(Time(g), LocalTime(iv.start))))
}

/// Pulls the (G, L) pairs out of a per-node interval file.
pub fn extract_clock_samples(
    reader: &IntervalFileReader<'_>,
    profile: &Profile,
) -> Result<Vec<ClockSample>> {
    let mut out = Vec::new();
    for iv in reader.intervals() {
        if let Some(s) = clock_sample(&iv?, profile)? {
            out.push(s);
        }
    }
    Ok(out)
}

/// [`extract_clock_samples`] over already-decoded intervals — used by
/// the fused pipeline, whose converter hands its in-memory records
/// straight to the merge stage without an encode/decode round-trip.
pub fn clock_samples_of(
    intervals: &[ute_format::record::Interval],
    profile: &Profile,
) -> Result<Vec<ClockSample>> {
    let mut out = Vec::new();
    for iv in intervals {
        if let Some(s) = clock_sample(iv, profile)? {
            out.push(s);
        }
    }
    Ok(out)
}

/// Fits one node's clock from its interval file's clock records.
///
/// With fewer than two usable samples the identity mapping anchored at
/// the first sample (or zero) is used — there is nothing to estimate.
pub fn fit_node(
    reader: &IntervalFileReader<'_>,
    profile: &Profile,
    estimator: RatioEstimator,
    filter: bool,
) -> Result<NodeFit> {
    fit_from_samples(
        reader.node,
        extract_clock_samples(reader, profile)?,
        estimator,
        filter,
    )
}

/// [`fit_node`] over already-decoded intervals (fused pipeline path).
pub fn fit_node_intervals(
    node: u16,
    intervals: &[ute_format::record::Interval],
    profile: &Profile,
    estimator: RatioEstimator,
    filter: bool,
) -> Result<NodeFit> {
    fit_from_samples(
        node,
        clock_samples_of(intervals, profile)?,
        estimator,
        filter,
    )
}

fn fit_from_samples(
    node: u16,
    raw: Vec<ClockSample>,
    estimator: RatioEstimator,
    filter: bool,
) -> Result<NodeFit> {
    let samples = if filter {
        filter_outliers_default(&raw)
    } else {
        raw
    };
    let fit = if samples.len() >= 2 {
        match estimator {
            RatioEstimator::Piecewise => FitKind::Piecewise(PiecewiseFit::fit(&samples)?),
            other => FitKind::Linear(ClockFit::fit(&samples, other)?),
        }
    } else {
        let anchor = samples
            .first()
            .copied()
            .unwrap_or(ClockSample::new(Time::ZERO, LocalTime::ZERO));
        FitKind::Linear(ClockFit {
            origin_global: anchor.global,
            origin_local: anchor.local,
            ratio: 1.0,
        })
    };
    let max_residual = samples
        .iter()
        .map(|s| s.global.ticks().abs_diff(fit.adjust(s.local).ticks()))
        .max()
        .unwrap_or(0);
    Ok(NodeFit {
        node,
        fit,
        samples_used: samples.len(),
        max_residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_core::ids::{CpuId, LogicalThreadId, NodeId};
    use ute_format::file::{FramePolicy, IntervalFileWriter};
    use ute_format::profile::MASK_PER_NODE;
    use ute_format::record::{Interval, IntervalType};
    use ute_format::thread_table::ThreadTable;
    use ute_format::value::Value;

    fn clock_file(profile: &Profile, pairs: &[(u64, u64)]) -> Vec<u8> {
        let mut w = IntervalFileWriter::new(
            profile,
            MASK_PER_NODE,
            3,
            &ThreadTable::new(),
            &[],
            FramePolicy::default(),
        );
        for &(g, l) in pairs {
            let iv = Interval::basic(
                IntervalType::complete(StateCode::CLOCK),
                l,
                0,
                CpuId(0),
                NodeId(3),
                LogicalThreadId(0),
            )
            .with_extra(profile, "globalTime", Value::Uint(g));
            w.push(&iv).unwrap();
        }
        w.finish()
    }

    #[test]
    fn extract_and_fit() {
        let p = Profile::standard();
        // Local clock runs at half speed, offset 100: L = (G-100)/2 + 50.
        let pairs: Vec<(u64, u64)> = (0..10)
            .map(|i| {
                let g = 100 + i * 1_000_000;
                (g, 50 + (g - 100) / 2)
            })
            .collect();
        let bytes = clock_file(&p, &pairs);
        let r = IntervalFileReader::open(&bytes, &p).unwrap();
        let samples = extract_clock_samples(&r, &p).unwrap();
        assert_eq!(samples.len(), 10);
        let nf = fit_node(&r, &p, RatioEstimator::RmsSegments, true).unwrap();
        assert_eq!(nf.node, 3);
        assert!(
            (nf.fit.ratio() - 2.0).abs() < 1e-9,
            "ratio {}",
            nf.fit.ratio()
        );
        // Adjusting a local timestamp recovers its global time.
        let adj = nf.fit.adjust(LocalTime(50 + 2_000_000 / 2));
        assert_eq!(adj.ticks(), 100 + 2_000_000);
    }

    #[test]
    fn single_sample_falls_back_to_identity_ratio() {
        let p = Profile::standard();
        let bytes = clock_file(&p, &[(500, 80)]);
        let r = IntervalFileReader::open(&bytes, &p).unwrap();
        let nf = fit_node(&r, &p, RatioEstimator::RmsSegments, true).unwrap();
        assert_eq!(nf.fit.ratio(), 1.0);
        assert_eq!(nf.fit.adjust(LocalTime(90)).ticks(), 510);
    }

    #[test]
    fn no_samples_identity_at_zero() {
        let p = Profile::standard();
        let bytes = clock_file(&p, &[]);
        let r = IntervalFileReader::open(&bytes, &p).unwrap();
        let nf = fit_node(&r, &p, RatioEstimator::RmsSegments, false).unwrap();
        assert_eq!(nf.samples_used, 0);
        assert_eq!(nf.fit.adjust(LocalTime(42)).ticks(), 42);
    }

    #[test]
    fn outlier_filtering_improves_fit() {
        let p = Profile::standard();
        let mut pairs: Vec<(u64, u64)> = (0..60u64)
            .map(|i| (i * 1_000_000_000, i * 1_000_000_000))
            .collect();
        pairs[30].1 += 4_000_000; // 4 ms deschedule outlier
        let bytes = clock_file(&p, &pairs);
        let r = IntervalFileReader::open(&bytes, &p).unwrap();
        let dirty = fit_node(&r, &p, RatioEstimator::RmsSegments, false).unwrap();
        let clean = fit_node(&r, &p, RatioEstimator::RmsSegments, true).unwrap();
        assert_eq!(clean.samples_used, 59);
        assert!((clean.fit.ratio() - 1.0).abs() < (dirty.fit.ratio() - 1.0).abs());
    }
}

#[cfg(test)]
mod piecewise_tests {
    use super::*;
    use crate::clockfit::tests_support::clock_file_with;
    use ute_format::file::IntervalFileReader;

    #[test]
    fn piecewise_estimator_yields_piecewise_fit() {
        let p = Profile::standard();
        // Rate steps from 2.0 to 0.5 halfway through.
        let pairs: Vec<(u64, u64)> = (0..20u64)
            .map(|i| {
                let g = i * 1_000_000;
                let l = if i < 10 {
                    g / 2
                } else {
                    10 * 500_000 + (g - 10 * 1_000_000) * 2
                };
                (g, l)
            })
            .collect();
        let bytes = clock_file_with(&p, &pairs);
        let r = IntervalFileReader::open(&bytes, &p).unwrap();
        let nf = fit_node(&r, &p, RatioEstimator::Piecewise, false).unwrap();
        assert!(matches!(nf.fit, FitKind::Piecewise(_)));
        // Anchor points map exactly under the piecewise fit …
        for &(g, l) in &pairs {
            assert_eq!(nf.fit.adjust(LocalTime(l)).ticks(), g);
        }
        // … while the single-ratio fit is visibly wrong mid-segment.
        let lin = fit_node(&r, &p, RatioEstimator::RmsSegments, false).unwrap();
        let probe = pairs[5];
        let pw_err = (nf.fit.adjust(LocalTime(probe.1)).ticks() as i64 - probe.0 as i64).abs();
        let lin_err = (lin.fit.adjust(LocalTime(probe.1)).ticks() as i64 - probe.0 as i64).abs();
        assert!(pw_err <= 1);
        assert!(lin_err > 1_000, "linear error only {lin_err}");
        // Durations scale by the segment's own ratio.
        let d1 = nf.fit.adjust_duration(LocalTime(pairs[2].1), Duration(100));
        let d2 = nf
            .fit
            .adjust_duration(LocalTime(pairs[15].1), Duration(100));
        assert_eq!(d1.ticks(), 200); // first half: local runs at half speed
        assert_eq!(d2.ticks(), 50); // second half: local runs at double speed
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use ute_core::ids::{CpuId, LogicalThreadId, NodeId};
    use ute_format::file::{FramePolicy, IntervalFileWriter};
    use ute_format::profile::MASK_PER_NODE;
    use ute_format::record::{Interval, IntervalType};
    use ute_format::thread_table::ThreadTable;
    use ute_format::value::Value;

    /// Builds a per-node interval file holding only CLOCK records.
    pub(crate) fn clock_file_with(profile: &Profile, pairs: &[(u64, u64)]) -> Vec<u8> {
        let mut w = IntervalFileWriter::new(
            profile,
            MASK_PER_NODE,
            3,
            &ThreadTable::new(),
            &[],
            FramePolicy::default(),
        );
        for &(g, l) in pairs {
            let iv = Interval::basic(
                IntervalType::complete(StateCode::CLOCK),
                l,
                0,
                CpuId(0),
                NodeId(3),
                LogicalThreadId(0),
            )
            .with_extra(profile, "globalTime", Value::Uint(g));
            w.push(&iv).unwrap();
        }
        w.finish()
    }
}
