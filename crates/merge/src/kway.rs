//! K-way merge of end-time-ordered interval streams.
//!
//! §3.1: "The merge utility uses a balanced tree in which each tree node
//! holds the pointer to the next interval in the corresponding interval
//! file. Tree nodes are sorted by end time. After an interval is copied
//! into the merged file, the next interval is fetched from the same file
//! and its tree node moves in the tree."
//!
//! [`BalancedTreeMerge`] is that structure (a `BTreeMap` keyed by
//! (end time, stream index)). [`NaiveMerge`] is the straw-man that
//! re-scans every stream head on each pop — kept for the ablation bench
//! that shows why the paper bothered with a tree.

use std::collections::BTreeMap;

/// A source of end-time-ordered items.
pub trait MergeSource {
    /// The merged item type.
    type Item;
    /// Pulls the next item, or `None` when exhausted.
    fn next_item(&mut self) -> Option<Self::Item>;
    /// The sort key (end time) of an item.
    fn end_of(item: &Self::Item) -> u64;
}

/// Balanced-tree k-way merge (the paper's design).
pub struct BalancedTreeMerge<S: MergeSource> {
    sources: Vec<S>,
    /// (end time, source index) → buffered head item.
    tree: BTreeMap<(u64, usize), S::Item>,
    /// Cached metric handles — one registry lookup per merge, not per pop.
    obs_comparisons: &'static ute_obs::Counter,
    obs_heap: &'static ute_obs::Gauge,
}

impl<S: MergeSource> BalancedTreeMerge<S> {
    /// Builds the merge, priming one tree node per non-empty source.
    pub fn new(mut sources: Vec<S>) -> Self {
        let mut tree = BTreeMap::new();
        for (i, s) in sources.iter_mut().enumerate() {
            if let Some(item) = s.next_item() {
                tree.insert((S::end_of(&item), i), item);
            }
        }
        let obs_heap = ute_obs::gauge("merge/heap_size_max");
        obs_heap.set_max(tree.len() as f64);
        BalancedTreeMerge {
            sources,
            tree,
            obs_comparisons: ute_obs::counter("merge/comparisons"),
            obs_heap,
        }
    }
}

impl<S: MergeSource> Iterator for BalancedTreeMerge<S> {
    type Item = S::Item;

    fn next(&mut self) -> Option<S::Item> {
        let key = *self.tree.keys().next()?;
        let item = self.tree.remove(&key).expect("head exists");
        let idx = key.1;
        if let Some(next) = self.sources[idx].next_item() {
            self.tree.insert((S::end_of(&next), idx), next);
            self.obs_heap.set_max(self.tree.len() as f64);
        }
        // A pop is a remove + (usually) a re-insert into a tree of k
        // stream heads: ~log₂(k) key comparisons each.
        self.obs_comparisons
            .add(u64::from((self.tree.len() as u64).max(1).ilog2()) + 1);
        Some(item)
    }
}

/// Naive merge: linear scan over all stream heads per pop (O(k) each).
pub struct NaiveMerge<S: MergeSource> {
    sources: Vec<S>,
    heads: Vec<Option<S::Item>>,
}

impl<S: MergeSource> NaiveMerge<S> {
    /// Builds the merge, priming every head.
    pub fn new(mut sources: Vec<S>) -> Self {
        let heads = sources.iter_mut().map(|s| s.next_item()).collect();
        NaiveMerge { sources, heads }
    }
}

impl<S: MergeSource> Iterator for NaiveMerge<S> {
    type Item = S::Item;

    fn next(&mut self) -> Option<S::Item> {
        let mut best: Option<(u64, usize)> = None;
        for (i, h) in self.heads.iter().enumerate() {
            if let Some(item) = h {
                let e = S::end_of(item);
                if best.map(|(be, bi)| (e, i) < (be, bi)).unwrap_or(true) {
                    best = Some((e, i));
                }
            }
        }
        let (_, i) = best?;
        let item = self.heads[i].take().expect("best head exists");
        self.heads[i] = self.sources[i].next_item();
        Some(item)
    }
}

/// A vector-backed source, used in tests and benches.
pub struct VecSource {
    items: std::vec::IntoIter<(u64, u64)>,
}

impl VecSource {
    /// Wraps `(end_time, payload)` pairs (must be end-ordered).
    pub fn new(items: Vec<(u64, u64)>) -> VecSource {
        VecSource {
            items: items.into_iter(),
        }
    }
}

impl MergeSource for VecSource {
    type Item = (u64, u64);

    fn next_item(&mut self) -> Option<Self::Item> {
        self.items.next()
    }

    fn end_of(item: &Self::Item) -> u64 {
        item.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streams() -> Vec<VecSource> {
        vec![
            VecSource::new(vec![(1, 0), (5, 0), (9, 0)]),
            VecSource::new(vec![(2, 1), (3, 1), (10, 1)]),
            VecSource::new(vec![]),
            VecSource::new(vec![(4, 3)]),
        ]
    }

    #[test]
    fn balanced_tree_merges_in_end_order() {
        let out: Vec<(u64, u64)> = BalancedTreeMerge::new(streams()).collect();
        let ends: Vec<u64> = out.iter().map(|x| x.0).collect();
        assert_eq!(ends, vec![1, 2, 3, 4, 5, 9, 10]);
    }

    #[test]
    fn naive_agrees_with_tree() {
        let a: Vec<(u64, u64)> = BalancedTreeMerge::new(streams()).collect();
        let b: Vec<(u64, u64)> = NaiveMerge::new(streams()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn ties_resolved_by_stream_index() {
        let s = vec![
            VecSource::new(vec![(5, 100)]),
            VecSource::new(vec![(5, 200)]),
        ];
        let out: Vec<(u64, u64)> = BalancedTreeMerge::new(s).collect();
        assert_eq!(out, vec![(5, 100), (5, 200)]);
    }

    #[test]
    fn empty_everything() {
        let out: Vec<(u64, u64)> = BalancedTreeMerge::new(Vec::<VecSource>::new()).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn large_random_merge_is_sorted_and_complete() {
        use rand_like::*;
        // Deterministic pseudo-random streams without pulling in rand.
        mod rand_like {
            pub fn xorshift(state: &mut u64) -> u64 {
                *state ^= *state << 13;
                *state ^= *state >> 7;
                *state ^= *state << 17;
                *state
            }
        }
        let mut state = 0x1234_5678u64;
        let sources: Vec<VecSource> = (0..8)
            .map(|_| {
                let mut v: Vec<(u64, u64)> = (0..500)
                    .map(|_| (xorshift(&mut state) % 1_000_000, 0))
                    .collect();
                v.sort_unstable();
                VecSource::new(v)
            })
            .collect();
        let out: Vec<(u64, u64)> = BalancedTreeMerge::new(sources).collect();
        assert_eq!(out.len(), 4000);
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
