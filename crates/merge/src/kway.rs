//! K-way merge of end-time-ordered interval streams.
//!
//! §3.1: "The merge utility uses a balanced tree in which each tree node
//! holds the pointer to the next interval in the corresponding interval
//! file. Tree nodes are sorted by end time. After an interval is copied
//! into the merged file, the next interval is fetched from the same file
//! and its tree node moves in the tree."
//!
//! [`BalancedTreeMerge`] is that structure (a `BTreeMap` keyed by
//! (end time, stream index)). [`NaiveMerge`] is the straw-man that
//! re-scans every stream head on each pop — kept for the ablation bench
//! that shows why the paper bothered with a tree.
//!
//! [`LoserTreeMerge`] is the production merge: a tournament *loser tree*
//! over the k stream heads. It pops in exactly the same `(end time,
//! stream index)` order as the balanced tree — the jobs-determinism
//! oracle depends on that — but a pop costs ⌈log₂ k⌉ integer-key
//! comparisons along one root path with **zero allocation**, where every
//! `BTreeMap` pop pays a node removal plus a node insertion. The
//! balanced tree is kept as the reference for the merge ablation bench.

use std::collections::BTreeMap;

/// A source of end-time-ordered items.
pub trait MergeSource {
    /// The merged item type.
    type Item;
    /// Pulls the next item, or `None` when exhausted.
    fn next_item(&mut self) -> Option<Self::Item>;
    /// The sort key (end time) of an item.
    fn end_of(item: &Self::Item) -> u64;
}

/// Balanced-tree k-way merge (the paper's design).
pub struct BalancedTreeMerge<S: MergeSource> {
    sources: Vec<S>,
    /// (end time, source index) → buffered head item.
    tree: BTreeMap<(u64, usize), S::Item>,
    /// Cached metric handles — one registry lookup per merge, not per pop.
    obs_comparisons: &'static ute_obs::Counter,
    obs_heap: &'static ute_obs::Gauge,
}

impl<S: MergeSource> BalancedTreeMerge<S> {
    /// Builds the merge, priming one tree node per non-empty source.
    pub fn new(mut sources: Vec<S>) -> Self {
        let mut tree = BTreeMap::new();
        for (i, s) in sources.iter_mut().enumerate() {
            if let Some(item) = s.next_item() {
                tree.insert((S::end_of(&item), i), item);
            }
        }
        let obs_heap = ute_obs::gauge("merge/heap_size_max");
        obs_heap.set_max(tree.len() as f64);
        BalancedTreeMerge {
            sources,
            tree,
            obs_comparisons: ute_obs::counter("merge/comparisons"),
            obs_heap,
        }
    }
}

impl<S: MergeSource> Iterator for BalancedTreeMerge<S> {
    type Item = S::Item;

    fn next(&mut self) -> Option<S::Item> {
        let key = *self.tree.keys().next()?;
        let item = self.tree.remove(&key).expect("head exists");
        let idx = key.1;
        if let Some(next) = self.sources[idx].next_item() {
            self.tree.insert((S::end_of(&next), idx), next);
            self.obs_heap.set_max(self.tree.len() as f64);
        }
        // A pop is a remove + (usually) a re-insert into a tree of k
        // stream heads: ~log₂(k) key comparisons each.
        self.obs_comparisons
            .add(u64::from((self.tree.len() as u64).max(1).ilog2()) + 1);
        Some(item)
    }
}

/// Key of an exhausted stream: sorts after every live key, including a
/// real record with `end == u64::MAX` (whose stream index is < MAX).
const EXHAUSTED: (u64, usize) = (u64::MAX, usize::MAX);

/// Tournament loser-tree k-way merge.
///
/// Layout (the classic array form, valid for any k ≥ 1, not just powers
/// of two): leaf `i` sits at array position `k + i`; its parent is
/// `(k + i) / 2`; internal node `n`'s children are `2n` and `2n + 1`;
/// `tree[n]` for `n ≥ 1` stores the **loser** (a source index) of the
/// match played at `n`, and `tree[0]` stores the overall winner.
///
/// Invariants:
/// - `keys[i]` is `(end, i)` for source `i`'s buffered head, or
///   [`EXHAUSTED`]; keys are totally ordered and distinct, so ties on
///   end time resolve by stream index — the repo-wide determinism rule.
/// - After every pop, only the winner's root path can have changed, and
///   replaying that path (swap on loss, carry on win) restores the
///   tournament — ⌈log₂ k⌉ comparisons, no allocation.
/// - An exhausted source keeps playing (and losing) with its sentinel
///   key, so the structure never shrinks or rebuilds; the merge is done
///   when the winner's key is the sentinel.
pub struct LoserTreeMerge<S: MergeSource> {
    sources: Vec<S>,
    /// Buffered head item per source (`None` once exhausted).
    heads: Vec<Option<S::Item>>,
    /// Sort key per source; `EXHAUSTED` once the stream runs dry.
    keys: Vec<(u64, usize)>,
    /// `tree[0]` = winner; `tree[1..k]` = losers per internal node.
    tree: Vec<usize>,
    obs_comparisons: &'static ute_obs::Counter,
}

impl<S: MergeSource> LoserTreeMerge<S> {
    /// Builds the tournament, priming one head per source.
    pub fn new(mut sources: Vec<S>) -> Self {
        let k = sources.len();
        let mut heads = Vec::with_capacity(k);
        let mut keys = Vec::with_capacity(k);
        for (i, s) in sources.iter_mut().enumerate() {
            match s.next_item() {
                Some(item) => {
                    keys.push((S::end_of(&item), i));
                    heads.push(Some(item));
                }
                None => {
                    keys.push(EXHAUSTED);
                    heads.push(None);
                }
            }
        }
        // Bottom-up tournament: winners[pos] is the winning source of
        // the subtree at array position pos (leaves k..2k are sources).
        let mut tree = vec![0usize; k.max(1)];
        if k > 0 {
            let mut winners = vec![0usize; 2 * k];
            for (i, slot) in winners[k..].iter_mut().enumerate() {
                *slot = i;
            }
            for n in (1..k).rev() {
                let a = winners[2 * n];
                let b = winners[2 * n + 1];
                if keys[a] < keys[b] {
                    winners[n] = a;
                    tree[n] = b;
                } else {
                    winners[n] = b;
                    tree[n] = a;
                }
            }
            tree[0] = if k == 1 { 0 } else { winners[1] };
        }
        ute_obs::gauge("merge/heap_size_max").set_max(k as f64);
        LoserTreeMerge {
            sources,
            heads,
            keys,
            tree,
            obs_comparisons: ute_obs::counter("merge/comparisons"),
        }
    }

    /// Replays the root path from leaf `from` after its key changed.
    #[inline]
    fn replay(&mut self, from: usize) {
        let k = self.keys.len();
        let mut winner = from;
        let mut node = (k + from) / 2;
        let mut comparisons = 0u64;
        while node > 0 {
            comparisons += 1;
            if self.keys[self.tree[node]] < self.keys[winner] {
                std::mem::swap(&mut self.tree[node], &mut winner);
            }
            node /= 2;
        }
        self.tree[0] = winner;
        self.obs_comparisons.add(comparisons);
    }
}

impl<S: MergeSource> Iterator for LoserTreeMerge<S> {
    type Item = S::Item;

    fn next(&mut self) -> Option<S::Item> {
        if self.keys.is_empty() {
            return None;
        }
        let w = self.tree[0];
        if self.keys[w] == EXHAUSTED {
            return None;
        }
        let item = self.heads[w].take().expect("winner has a head");
        match self.sources[w].next_item() {
            Some(next) => {
                self.keys[w] = (S::end_of(&next), w);
                self.heads[w] = Some(next);
            }
            None => self.keys[w] = EXHAUSTED,
        }
        self.replay(w);
        Some(item)
    }
}

/// Naive merge: linear scan over all stream heads per pop (O(k) each).
pub struct NaiveMerge<S: MergeSource> {
    sources: Vec<S>,
    heads: Vec<Option<S::Item>>,
}

impl<S: MergeSource> NaiveMerge<S> {
    /// Builds the merge, priming every head.
    pub fn new(mut sources: Vec<S>) -> Self {
        let heads = sources.iter_mut().map(|s| s.next_item()).collect();
        NaiveMerge { sources, heads }
    }
}

impl<S: MergeSource> Iterator for NaiveMerge<S> {
    type Item = S::Item;

    fn next(&mut self) -> Option<S::Item> {
        let mut best: Option<(u64, usize)> = None;
        for (i, h) in self.heads.iter().enumerate() {
            if let Some(item) = h {
                let e = S::end_of(item);
                if best.map(|(be, bi)| (e, i) < (be, bi)).unwrap_or(true) {
                    best = Some((e, i));
                }
            }
        }
        let (_, i) = best?;
        let item = self.heads[i].take().expect("best head exists");
        self.heads[i] = self.sources[i].next_item();
        Some(item)
    }
}

/// A vector-backed source, used in tests and benches.
pub struct VecSource {
    items: std::vec::IntoIter<(u64, u64)>,
}

impl VecSource {
    /// Wraps `(end_time, payload)` pairs (must be end-ordered).
    pub fn new(items: Vec<(u64, u64)>) -> VecSource {
        VecSource {
            items: items.into_iter(),
        }
    }
}

impl MergeSource for VecSource {
    type Item = (u64, u64);

    fn next_item(&mut self) -> Option<Self::Item> {
        self.items.next()
    }

    fn end_of(item: &Self::Item) -> u64 {
        item.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streams() -> Vec<VecSource> {
        vec![
            VecSource::new(vec![(1, 0), (5, 0), (9, 0)]),
            VecSource::new(vec![(2, 1), (3, 1), (10, 1)]),
            VecSource::new(vec![]),
            VecSource::new(vec![(4, 3)]),
        ]
    }

    #[test]
    fn balanced_tree_merges_in_end_order() {
        let out: Vec<(u64, u64)> = BalancedTreeMerge::new(streams()).collect();
        let ends: Vec<u64> = out.iter().map(|x| x.0).collect();
        assert_eq!(ends, vec![1, 2, 3, 4, 5, 9, 10]);
    }

    #[test]
    fn naive_agrees_with_tree() {
        let a: Vec<(u64, u64)> = BalancedTreeMerge::new(streams()).collect();
        let b: Vec<(u64, u64)> = NaiveMerge::new(streams()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn ties_resolved_by_stream_index() {
        let s = vec![
            VecSource::new(vec![(5, 100)]),
            VecSource::new(vec![(5, 200)]),
        ];
        let out: Vec<(u64, u64)> = BalancedTreeMerge::new(s).collect();
        assert_eq!(out, vec![(5, 100), (5, 200)]);
    }

    #[test]
    fn empty_everything() {
        let out: Vec<(u64, u64)> = BalancedTreeMerge::new(Vec::<VecSource>::new()).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn loser_tree_agrees_with_balanced_tree() {
        let a: Vec<(u64, u64)> = BalancedTreeMerge::new(streams()).collect();
        let b: Vec<(u64, u64)> = LoserTreeMerge::new(streams()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn loser_tree_ties_resolved_by_stream_index() {
        let s = vec![
            VecSource::new(vec![(5, 100), (5, 101)]),
            VecSource::new(vec![(5, 200)]),
            VecSource::new(vec![(5, 300), (5, 301)]),
        ];
        let out: Vec<(u64, u64)> = LoserTreeMerge::new(s).collect();
        // All ends equal: every record of stream 0 drains before stream 1
        // sees the light, etc. — the (end, source index) total order.
        assert_eq!(out, vec![(5, 100), (5, 101), (5, 200), (5, 300), (5, 301)]);
    }

    #[test]
    fn loser_tree_degenerate_shapes() {
        // k = 0
        let out: Vec<(u64, u64)> = LoserTreeMerge::new(Vec::<VecSource>::new()).collect();
        assert!(out.is_empty());
        // k = 1
        let out: Vec<(u64, u64)> =
            LoserTreeMerge::new(vec![VecSource::new(vec![(1, 1), (2, 2)])]).collect();
        assert_eq!(out, vec![(1, 1), (2, 2)]);
        // all sources empty
        let out: Vec<(u64, u64)> =
            LoserTreeMerge::new(vec![VecSource::new(vec![]), VecSource::new(vec![])]).collect();
        assert!(out.is_empty());
        // max end-time record still merges ahead of exhausted sentinels
        let out: Vec<(u64, u64)> = LoserTreeMerge::new(vec![
            VecSource::new(vec![(u64::MAX, 7)]),
            VecSource::new(vec![(3, 1)]),
        ])
        .collect();
        assert_eq!(out, vec![(3, 1), (u64::MAX, 7)]);
    }

    #[test]
    fn loser_tree_matches_balanced_for_every_stream_count() {
        // Exercise every non-power-of-two shape up to 17 sources.
        let mut state = 0xfeed_f00du64;
        let mut xorshift = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for k in 1..=17usize {
            let streams: Vec<Vec<(u64, u64)>> = (0..k)
                .map(|_| {
                    let n = (xorshift() % 40) as usize;
                    let mut v: Vec<(u64, u64)> =
                        (0..n).map(|_| (xorshift() % 50, xorshift())).collect();
                    v.sort_unstable();
                    v
                })
                .collect();
            let a: Vec<(u64, u64)> =
                BalancedTreeMerge::new(streams.iter().cloned().map(VecSource::new).collect())
                    .collect();
            let b: Vec<(u64, u64)> =
                LoserTreeMerge::new(streams.into_iter().map(VecSource::new).collect()).collect();
            assert_eq!(a, b, "divergence at k={k}");
        }
    }

    #[test]
    fn large_random_merge_is_sorted_and_complete() {
        use rand_like::*;
        // Deterministic pseudo-random streams without pulling in rand.
        mod rand_like {
            pub fn xorshift(state: &mut u64) -> u64 {
                *state ^= *state << 13;
                *state ^= *state >> 7;
                *state ^= *state << 17;
                *state
            }
        }
        let mut state = 0x1234_5678u64;
        let sources: Vec<VecSource> = (0..8)
            .map(|_| {
                let mut v: Vec<(u64, u64)> = (0..500)
                    .map(|_| (xorshift(&mut state) % 1_000_000, 0))
                    .collect();
                v.sort_unstable();
                VecSource::new(v)
            })
            .collect();
        let out: Vec<(u64, u64)> = BalancedTreeMerge::new(sources).collect();
        assert_eq!(out.len(), 4000);
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
