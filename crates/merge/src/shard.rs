//! Sharded k-way merge: partition the merged time line by end *value*
//! into half-open ranges, merge each shard independently, and stitch the
//! shard outputs back to back.
//!
//! The global merge orders records by `(end time, source index)`. Because
//! end time is the primary key, every record with end in `[lo, hi)`
//! precedes every record with end `>= hi` in the global sequence; and
//! because the ranges are half-open on end *values*, every equal-end tie
//! lands inside one shard, where the per-shard [`LoserTreeMerge`] breaks
//! it by the same source index. The concatenation of per-shard merges is
//! therefore *exactly* the global merge sequence — independent of where
//! the boundaries fall, how many shards there are, or how many workers
//! ran them. That invariant is what lets `ute-pipeline` merge shards in
//! parallel and still emit byte-identical output at any `--jobs`.
//!
//! Boundaries are planned from end-time samples taken at the
//! frame-directory stride (`max_records_per_frame × max_frames_per_dir`),
//! so each shard covers roughly a directory-aligned slice of the output
//! file — the same granularity the reader seeks by.

use ute_format::record::Interval;

use crate::kway::LoserTreeMerge;
use crate::merger::IvSource;

/// Plans up to `shards - 1` interior boundary end values from per-stream
/// end-time samples taken every `stride` records. Returns a sorted,
/// deduplicated, strictly-increasing boundary list; fewer boundaries (or
/// none) when the data's end-time spread cannot support `shards` distinct
/// cuts. Any boundary list — including an empty or badly skewed one — is
/// correct; planning only affects balance.
pub fn plan_boundaries(streams: &[Vec<Interval>], stride: usize, shards: usize) -> Vec<u64> {
    if shards <= 1 {
        return Vec::new();
    }
    let stride = stride.max(1);
    let mut samples: Vec<u64> = Vec::new();
    for s in streams {
        let mut i = 0;
        while i < s.len() {
            samples.push(s[i].end());
            i += stride;
        }
    }
    if samples.is_empty() {
        return Vec::new();
    }
    samples.sort_unstable();
    let mut bounds: Vec<u64> = (1..shards)
        .map(|j| samples[(j * samples.len() / shards).min(samples.len() - 1)])
        .collect();
    bounds.dedup();
    // A boundary at or below the global minimum only creates an empty
    // leading shard; drop it so shard 0 always has a chance at work.
    let min_end = samples[0];
    bounds.retain(|&b| b > min_end);
    bounds
}

/// Splits one end-ordered stream into `boundaries.len() + 1` contiguous
/// owned segments: segment 0 holds ends in `[0, boundaries[0])`, segment
/// `s` holds `[boundaries[s-1], boundaries[s])`, and the last segment is
/// unbounded above. Records are moved, never cloned, and each segment
/// preserves the stream's order.
pub fn split_stream(mut items: Vec<Interval>, boundaries: &[u64]) -> Vec<Vec<Interval>> {
    let mut out = Vec::with_capacity(boundaries.len() + 1);
    for &b in boundaries.iter().rev() {
        let at = items.partition_point(|iv| iv.end() < b);
        out.push(items.split_off(at));
    }
    out.push(items);
    out.reverse();
    out
}

/// The serial reference for the sharded merge: splits every stream at
/// `boundaries`, merges each shard with a [`LoserTreeMerge`] (sources in
/// stream order, so ties break identically), and concatenates the shard
/// outputs in shard order.
///
/// This function states the stitch equivalence the parallel pipeline
/// relies on — its tests prove `merge_sharded(streams, ANY boundaries)`
/// equals the unsharded global merge. `ute-pipeline` runs the same
/// per-shard merges on worker threads and stitches their channels.
pub fn merge_sharded(streams: Vec<Vec<Interval>>, boundaries: &[u64]) -> Vec<Interval> {
    let nshards = boundaries.len() + 1;
    // seg[shard][stream]: transpose of per-stream splits.
    let mut seg: Vec<Vec<Vec<Interval>>> = (0..nshards).map(|_| Vec::new()).collect();
    for stream in streams {
        for (s, part) in split_stream(stream, boundaries).into_iter().enumerate() {
            seg[s].push(part);
        }
    }
    let mut out = Vec::new();
    for shard in seg {
        let sources: Vec<IvSource> = shard.into_iter().map(IvSource::new).collect();
        out.extend(LoserTreeMerge::new(sources));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_core::ids::{CpuId, LogicalThreadId, NodeId};
    use ute_format::record::IntervalType;
    use ute_format::state::StateCode;

    fn iv(end: u64, node: u16) -> Interval {
        Interval::basic(
            IntervalType::complete(StateCode::RUNNING),
            end,
            0,
            CpuId(0),
            NodeId(node),
            LogicalThreadId(0),
        )
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn global_merge(streams: Vec<Vec<Interval>>) -> Vec<Interval> {
        let sources: Vec<IvSource> = streams.into_iter().map(IvSource::new).collect();
        LoserTreeMerge::new(sources).collect()
    }

    #[test]
    fn split_stream_is_half_open_on_end_values() {
        let stream = vec![iv(1, 0), iv(5, 0), iv(5, 0), iv(5, 0), iv(9, 0)];
        // Boundary exactly on the tie value: every end==5 record falls in
        // the *right* segment, together — ties never straddle a cut.
        let parts = split_stream(stream, &[5]);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].iter().map(|v| v.end()).collect::<Vec<_>>(), [1]);
        assert_eq!(
            parts[1].iter().map(|v| v.end()).collect::<Vec<_>>(),
            [5, 5, 5, 9]
        );
        // Reassembling the segments gives back the original stream.
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn sharded_merge_equals_global_for_any_boundaries() {
        let mut state = 0xabad_cafeu64;
        for trial in 0..30 {
            let k = 1 + (xorshift(&mut state) % 9) as usize;
            let streams: Vec<Vec<Interval>> = (0..k)
                .map(|n| {
                    let len = (xorshift(&mut state) % 60) as usize;
                    let mut ends: Vec<u64> = (0..len).map(|_| xorshift(&mut state) % 40).collect();
                    ends.sort_unstable();
                    ends.into_iter().map(|e| iv(e, n as u16)).collect()
                })
                .collect();
            // Random boundaries, deliberately including values that are
            // live tie ends, duplicates of each other after dedup, and
            // values outside the data range.
            let nb = (xorshift(&mut state) % 5) as usize;
            let mut bounds: Vec<u64> = (0..nb).map(|_| xorshift(&mut state) % 50).collect();
            bounds.sort_unstable();
            bounds.dedup();
            let expect = global_merge(streams.clone());
            let got = merge_sharded(streams, &bounds);
            assert_eq!(
                expect.len(),
                got.len(),
                "trial {trial}: length mismatch with bounds {bounds:?}"
            );
            assert_eq!(expect, got, "trial {trial}: order diverged at {bounds:?}");
        }
    }

    #[test]
    fn all_equal_ends_stay_in_shard_and_in_source_order() {
        let streams: Vec<Vec<Interval>> = (0..4)
            .map(|n| vec![iv(7, n as u16), iv(7, n as u16)])
            .collect();
        let expect = global_merge(streams.clone());
        // Cut exactly at the tie value and on both sides of it.
        for bounds in [&[7u64][..], &[6, 7, 8][..], &[7, 7][..]] {
            let got = merge_sharded(streams.clone(), bounds);
            assert_eq!(expect, got, "bounds {bounds:?}");
        }
        // Ties drain whole streams in source order.
        let nodes: Vec<u16> = expect.iter().map(|v| v.node.raw()).collect();
        assert_eq!(nodes, [0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn plan_boundaries_spreads_cuts_and_handles_degenerates() {
        let streams: Vec<Vec<Interval>> = (0..2)
            .map(|n| (0..1000).map(|i| iv(i * 10, n as u16)).collect())
            .collect();
        let bounds = plan_boundaries(&streams, 8, 4);
        assert_eq!(bounds.len(), 3, "{bounds:?}");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{bounds:?}");
        assert!(bounds[0] > 0 && bounds[2] < 9990, "{bounds:?}");
        // Degenerates: one shard, no data, constant ends.
        assert!(plan_boundaries(&streams, 8, 1).is_empty());
        assert!(plan_boundaries(&[], 8, 4).is_empty());
        let flat: Vec<Vec<Interval>> = vec![(0..100).map(|_| iv(5, 0)).collect()];
        assert!(
            plan_boundaries(&flat, 4, 4).is_empty(),
            "constant ends admit no interior cut"
        );
    }
}
