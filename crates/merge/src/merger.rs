//! The merge pipeline.

use ute_clock::ratio::RatioEstimator;
use ute_core::bebits::BeBits;
use ute_core::error::{Result, UteError};
use ute_core::ids::{CpuId, LogicalThreadId, NodeId, ThreadType};
use ute_core::time::LocalTime;
use ute_format::file::{FramePolicy, IntervalFileReader, IntervalFileWriter, MERGED_NODE};
use ute_format::profile::{Profile, MASK_MERGED};
use ute_format::record::{Interval, IntervalType};
use ute_format::state::StateCode;
use ute_format::thread_table::ThreadTable;
use ute_slog::builder::{BuildOptions, SlogBuilder};
use ute_slog::file::SlogFile;

use crate::clockfit::{fit_node, fit_node_intervals, NodeFit};
use crate::stream::ReorderBuffer;

/// The merged stream plus the tables needed to write or visualize it.
type MergedStream = (Vec<Interval>, ThreadTable, Vec<(u32, String)>, MergeStats);
use crate::kway::{LoserTreeMerge, MergeSource};

/// Merge configuration.
#[derive(Debug, Clone)]
pub struct MergeOptions {
    /// Which §2.2 estimator computes each node's ratio `R`.
    pub estimator: RatioEstimator,
    /// Whether to drop §5 deschedule outliers before fitting.
    pub filter_outliers: bool,
    /// Frame policy of the merged output file.
    pub policy: FramePolicy,
    /// If set, only records of threads with these types are merged —
    /// §2.3.3: the thread-table categories "provide a way to choose
    /// specific threads for merging". Clock records always pass.
    pub thread_types: Option<Vec<ThreadType>>,
    /// Whether to add the §3.3 zero-duration continuation intervals at
    /// the head of each output frame.
    pub frame_pseudo_intervals: bool,
    /// Salvage mode: a node whose interval file fails to open, absorb,
    /// fit, or adjust (including a panic in the per-node stage) is
    /// dropped whole and counted in [`MergeStats::nodes_degraded`]
    /// instead of aborting the merge. Off by default — library callers
    /// get fail-fast unless they opt in.
    pub salvage: bool,
    /// Nodes known missing before the merge started (e.g. a per-node
    /// file absent on disk). Each gets a zero-duration [`StateCode::GAP`]
    /// pseudo-record at the head of the merged stream so downstream
    /// consumers can see the hole.
    pub gap_nodes: Vec<u16>,
}

impl Default for MergeOptions {
    fn default() -> Self {
        MergeOptions {
            estimator: RatioEstimator::RmsSegments,
            filter_outliers: true,
            policy: FramePolicy::default(),
            thread_types: None,
            frame_pseudo_intervals: true,
            salvage: false,
            gap_nodes: Vec::new(),
        }
    }
}

/// Merge statistics.
#[derive(Debug, Clone, Default)]
pub struct MergeStats {
    /// Records read across all inputs.
    pub records_in: u64,
    /// Records written to the merged file (including pseudo records).
    pub records_out: u64,
    /// §3.3 pseudo continuation records added at frame heads.
    pub pseudo_added: u64,
    /// Salvage mode: inputs dropped whole because they failed to open,
    /// absorb, fit, or adjust.
    pub nodes_degraded: u64,
    /// Per-node clock fits used for adjustment.
    pub fits: Vec<NodeFit>,
}

/// The merged interval file plus statistics.
#[derive(Debug)]
pub struct MergeOutput {
    /// Serialized merged interval file ([`MASK_MERGED`]).
    pub merged: Vec<u8>,
    /// Statistics.
    pub stats: MergeStats,
}

/// A [`MergeSource`] over an in-memory, end-ordered interval vector —
/// the serial path's per-node cursor. The parallel path uses a
/// channel-fed source instead (`ute-pipeline`), feeding the same
/// [`LoserTreeMerge`].
pub struct IvSource {
    items: std::vec::IntoIter<Interval>,
}

impl IvSource {
    /// Wraps an end-ordered interval vector.
    pub fn new(items: Vec<Interval>) -> IvSource {
        IvSource {
            items: items.into_iter(),
        }
    }
}

impl MergeSource for IvSource {
    type Item = Interval;

    fn next_item(&mut self) -> Option<Interval> {
        self.items.next()
    }

    fn end_of(item: &Interval) -> u64 {
        item.end()
    }
}

/// Folds one input file's header into the union thread table and the
/// unified marker table. Must be called in input order — the union
/// tables (and therefore the merged file's header bytes) are defined by
/// that order, which is what lets the parallel path reproduce the serial
/// output byte for byte.
pub fn absorb_file_header(
    reader: &IntervalFileReader<'_>,
    union_threads: &mut ThreadTable,
    markers: &mut Vec<(u32, String)>,
) -> Result<()> {
    absorb_header_tables(&reader.threads, &reader.markers, union_threads, markers)
}

/// [`absorb_file_header`] over bare tables — for callers that only have
/// a copy of a file's header (e.g. one sent over a channel by a pipeline
/// worker) rather than an open reader.
pub fn absorb_header_tables(
    threads: &ThreadTable,
    file_markers: &[(u32, String)],
    union_threads: &mut ThreadTable,
    markers: &mut Vec<(u32, String)>,
) -> Result<()> {
    union_threads.absorb(threads)?;
    for (id, name) in file_markers {
        match markers.iter().find(|(i, _)| i == id) {
            Some((_, existing)) if existing != name => {
                return Err(UteError::Invalid(format!(
                    "marker id {id} names both \"{existing}\" and \"{name}\"; \
                     inputs were not converted together"
                )));
            }
            Some(_) => {}
            None => markers.push((*id, name.clone())),
        }
    }
    Ok(())
}

/// The per-node stage of the merge: fits the node's clock, then decodes,
/// filters, and clock-adjusts its records, streaming them end-ordered
/// into `sink` (via a [`ReorderBuffer`], so the emitted sequence is the
/// stable end-time sort regardless of rounding jitter). Returns the
/// node's fit and its raw record count.
///
/// Both the serial path (sink = collect into a vector) and the parallel
/// path (sink = bounded channel send) run exactly this function, which
/// is what makes their merged outputs byte-identical.
pub fn adjust_node(
    reader: &IntervalFileReader<'_>,
    profile: &Profile,
    opts: &MergeOptions,
    sink: impl FnMut(Interval) -> Result<()>,
) -> Result<(NodeFit, u64)> {
    let _span = ute_obs::Span::enter("merge", format!("merge node {}", reader.node));
    let nf = fit_node(reader, profile, opts.estimator, opts.filter_outliers)?;
    let records_in = adjust_stream(&reader.threads, reader.intervals(), &nf, opts, sink)?;
    Ok((nf, records_in))
}

/// [`adjust_node`] over the converter's in-memory intervals — the fused
/// pipeline path, which skips the encode/decode round-trip entirely
/// (both the clock-fit pass and the adjust pass read the decoded file
/// twice in the staged path). `threads` must be the same per-node table
/// the converted file's header carries, so filtering is identical.
pub fn adjust_intervals(
    node: u16,
    threads: &ThreadTable,
    intervals: Vec<Interval>,
    profile: &Profile,
    opts: &MergeOptions,
    sink: impl FnMut(Interval) -> Result<()>,
) -> Result<(NodeFit, u64)> {
    let _span = ute_obs::Span::enter("merge", format!("merge node {node}"));
    let nf = fit_node_intervals(
        node,
        &intervals,
        profile,
        opts.estimator,
        opts.filter_outliers,
    )?;
    let records_in = adjust_stream(threads, intervals.into_iter().map(Ok), &nf, opts, sink)?;
    Ok((nf, records_in))
}

/// The loop both [`adjust_node`] and [`adjust_intervals`] run: filter,
/// clock-adjust, and end-order every record of one node. Sharing this
/// body is what keeps the two entry points byte-equivalent.
fn adjust_stream(
    threads: &ThreadTable,
    intervals: impl IntoIterator<Item = Result<Interval>>,
    nf: &NodeFit,
    opts: &MergeOptions,
    mut sink: impl FnMut(Interval) -> Result<()>,
) -> Result<u64> {
    let obs_in = ute_obs::counter("merge/records_in");
    let mut records_in = 0u64;
    let mut emitted = 0u64;
    let mut counted_sink = |iv: Interval| {
        emitted += 1;
        sink(iv)
    };
    let mut reorder = ReorderBuffer::new();
    for iv in intervals {
        let mut iv = iv?;
        records_in += 1;
        if let Some(types) = &opts.thread_types {
            if iv.itype.state != StateCode::CLOCK {
                let ttype = threads
                    .lookup(iv.node, iv.thread)
                    .map(|e| e.ttype)
                    .ok_or_else(|| {
                        UteError::corrupt(format!(
                            "record references unknown thread (node {}, logical {})",
                            iv.node, iv.thread
                        ))
                    })?;
                if !types.contains(&ttype) {
                    continue;
                }
            }
        }
        // Map both endpoints through the fit and derive the duration,
        // rather than scaling the duration independently (§2.2's R·D —
        // the two agree to within rounding). Endpoint mapping is
        // monotone, so it cannot create the partial overlaps that
        // start+R·D can: a record whose start precedes the node's first
        // clock sample has its start clamped to the fit origin, and
        // keeping the full scaled duration would push its end past
        // fit(local end) — on top of every enclosed record.
        let gend = nf.fit.adjust(LocalTime(iv.end())).ticks();
        let gstart = nf.fit.adjust(LocalTime(iv.start)).ticks().min(gend);
        iv.start = gstart;
        iv.duration = gend - gstart;
        reorder.push(gend, iv, &mut counted_sink)?;
    }
    reorder.finish(&mut counted_sink)?;
    obs_in.add(emitted);
    ute_obs::gauge("merge/clock_fit_residual_ns").set_max(nf.max_residual as f64);
    Ok(records_in)
}

/// Decodes, clock-adjusts, filters, and k-way merges the input files into
/// one globally-timed stream. Shared by [`merge_files`] and [`slogmerge`].
fn merge_core(files: &[&[u8]], profile: &Profile, opts: &MergeOptions) -> Result<MergedStream> {
    let mut stats = MergeStats::default();
    let mut union_threads = ThreadTable::new();
    let mut markers: Vec<(u32, String)> = Vec::new();
    let mut sources = Vec::with_capacity(files.len());

    for (i, bytes) in files.iter().enumerate() {
        // Open + absorb first, attempt the per-node stage second. The
        // parallel path absorbs every openable header serially before
        // its workers run, so salvage here must do the same: a node
        // that degrades mid-adjust still leaves its header in the
        // union tables, or jobs=1 and jobs=N outputs would diverge.
        let reader = match IntervalFileReader::open(bytes, profile) {
            Ok(r) => r,
            Err(e) if opts.salvage => {
                degrade_node(&mut stats, &format!("input {i}"), &e.to_string());
                continue;
            }
            Err(e) => return Err(e),
        };
        match absorb_file_header(&reader, &mut union_threads, &mut markers) {
            Ok(()) => {}
            Err(e) if opts.salvage => {
                degrade_node(&mut stats, &format!("node {}", reader.node), &e.to_string());
                continue;
            }
            Err(e) => return Err(e),
        }
        let attempt = || {
            let mut adjusted = Vec::new();
            let out = adjust_node(&reader, profile, opts, |iv| {
                adjusted.push(iv);
                Ok(())
            })?;
            Ok::<_, UteError>((adjusted, out))
        };
        let outcome = if opts.salvage {
            // Same all-or-nothing panic isolation the pipeline workers
            // use, so a deterministic failure degrades the same node
            // at every jobs value.
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(attempt)) {
                Ok(r) => r,
                Err(_) => Err(UteError::Invalid("per-node merge stage panicked".into())),
            }
        } else {
            attempt()
        };
        match outcome {
            Ok((adjusted, (nf, records_in))) => {
                stats.records_in += records_in;
                stats.fits.push(nf);
                sources.push(IvSource::new(adjusted));
            }
            Err(e) if opts.salvage => {
                degrade_node(&mut stats, &format!("node {}", reader.node), &e.to_string());
            }
            Err(e) => return Err(e),
        }
    }

    markers.sort_by_key(|(id, _)| *id);
    let merged: Vec<Interval> = LoserTreeMerge::new(sources).collect();
    Ok((merged, union_threads, markers, stats))
}

/// Records one salvage-mode degraded input: bumps the stats counter and
/// warns on stderr (the merge has no other channel for it).
pub fn degrade_node(stats: &mut MergeStats, who: &str, why: &str) {
    stats.nodes_degraded += 1;
    salvage_warn(who, why);
}

/// The stderr warning for a salvage-mode drop, shared with the pipeline
/// workers (which count degraded nodes elsewhere).
pub fn salvage_warn(who: &str, why: &str) {
    eprintln!("ute: warning: salvage: dropping {who}: {why}");
}

/// The zero-duration [`StateCode::GAP`] pseudo-record marking a node
/// whose data is missing from a degraded merge.
pub fn gap_record(node: u16) -> Interval {
    Interval::basic(
        IntervalType::complete(StateCode::GAP),
        0,
        0,
        CpuId(0),
        NodeId(node),
        LogicalThreadId(0),
    )
}

/// Tracks open states per thread to synthesize the §3.3 frame-head
/// pseudo continuation records. Keyed by a `BTreeMap` so pseudo records
/// at a frame head come out in sorted `(node, thread)` order — the
/// determinism gate compares merged files byte for byte, so emission
/// order must not depend on hash-map iteration.
#[derive(Default)]
struct OpenTracker {
    open: std::collections::BTreeMap<(u16, u16), Vec<Interval>>,
}

impl OpenTracker {
    fn observe(&mut self, iv: &Interval) {
        if iv.itype.state == StateCode::CLOCK {
            return;
        }
        let key = (iv.node.raw(), iv.thread.raw());
        match iv.itype.bebits {
            BeBits::Begin => self.open.entry(key).or_default().push(iv.clone()),
            BeBits::End => {
                if let Some(stack) = self.open.get_mut(&key) {
                    if let Some(pos) = stack.iter().rposition(|o| o.itype.state == iv.itype.state) {
                        stack.remove(pos);
                    }
                }
            }
            BeBits::Complete | BeBits::Continuation => {}
        }
    }

    /// Zero-duration continuation records for every state open at `at`,
    /// in sorted `(node, thread)` order.
    fn pseudo_records(&self, at: u64) -> Vec<Interval> {
        let mut out = Vec::new();
        for stack in self.open.values() {
            for open in stack {
                let mut p = open.clone();
                p.itype = IntervalType {
                    state: open.itype.state,
                    bebits: BeBits::Continuation,
                };
                p.start = at;
                p.duration = 0;
                out.push(p);
            }
        }
        out
    }
}

/// Writes an already-merged, end-ordered interval stream to a merged
/// interval file, inserting the §3.3 frame-head pseudo continuation
/// records. The tail of both the serial [`merge_files`] path and the
/// parallel `ute-pipeline` path — the stream is consumed incrementally,
/// so a channel-fed iterator overlaps writing with upstream decoding.
pub fn write_merged_stream(
    profile: &Profile,
    threads: &ThreadTable,
    markers: &[(u32, String)],
    opts: &MergeOptions,
    intervals: impl IntoIterator<Item = Interval>,
    stats: &mut MergeStats,
) -> Result<Vec<u8>> {
    let mut writer = IntervalFileWriter::new(
        profile,
        MASK_MERGED,
        MERGED_NODE,
        threads,
        markers,
        opts.policy,
    );
    let mut tracker = OpenTracker::default();
    let mut pushed: u64 = 0;
    let mut last_end: u64 = 0;
    let frame_len = opts.policy.max_records_per_frame as u64;
    // Gap pseudo-records for nodes missing from a degraded merge go
    // first (zero start, zero duration, sorted by node) so they land at
    // a deterministic position regardless of how the merge was run.
    let mut gaps: Vec<u16> = opts.gap_nodes.clone();
    gaps.sort_unstable();
    gaps.dedup();
    for node in gaps {
        writer.push(&gap_record(node))?;
        pushed += 1;
    }
    for iv in intervals {
        if opts.frame_pseudo_intervals && pushed > 0 && pushed.is_multiple_of(frame_len) {
            for p in tracker.pseudo_records(last_end) {
                writer.push(&p)?;
                pushed += 1;
                stats.pseudo_added += 1;
            }
        }
        writer.push(&iv)?;
        pushed += 1;
        last_end = iv.end();
        tracker.observe(&iv);
    }
    stats.records_out = writer.record_count();
    ute_obs::counter("merge/records_out").add(stats.records_out);
    ute_obs::counter("merge/pseudo_added").add(stats.pseudo_added);
    Ok(writer.finish())
}

/// Merges per-node interval files into one merged interval file.
pub fn merge_files(files: &[&[u8]], profile: &Profile, opts: &MergeOptions) -> Result<MergeOutput> {
    let (merged, threads, markers, mut stats) = merge_core(files, profile, opts)?;
    let bytes = write_merged_stream(profile, &threads, &markers, opts, merged, &mut stats)?;
    Ok(MergeOutput {
        merged: bytes,
        stats,
    })
}

/// The `slogmerge` utility: the same merge pipeline, emitting a SLOG file
/// for Jumpshot-style visualization (plus the merged stream statistics).
pub fn slogmerge(
    files: &[&[u8]],
    profile: &Profile,
    opts: &MergeOptions,
    build: BuildOptions,
) -> Result<(SlogFile, MergeStats)> {
    let (merged, threads, markers, mut stats) = merge_core(files, profile, opts)?;
    stats.records_out = merged.len() as u64;
    ute_obs::counter("merge/records_out").add(stats.records_out);
    let slog = SlogBuilder::new(profile, build).build(&merged, &threads, &markers)?;
    Ok((slog, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_core::ids::{CpuId, LogicalThreadId, NodeId, Pid, SystemThreadId, TaskId};
    use ute_format::profile::MASK_PER_NODE;
    use ute_format::thread_table::ThreadEntry;
    use ute_format::value::Value;

    /// Builds a per-node file whose local clock runs at `rate` (local
    /// ticks per global tick) from global origin 0, containing clock
    /// records every second plus one MPI_Barrier piece per second.
    fn node_file(profile: &Profile, node: u16, rate: f64, secs: u64) -> Vec<u8> {
        let mut threads = ThreadTable::new();
        threads
            .register(ThreadEntry {
                task: TaskId(node as u32),
                pid: Pid(1),
                system_tid: SystemThreadId(node as u64),
                node: NodeId(node),
                logical: LogicalThreadId(0),
                ttype: ThreadType::Mpi,
            })
            .unwrap();
        let mut w = IntervalFileWriter::new(
            profile,
            MASK_PER_NODE,
            node,
            &threads,
            &[(1, "Phase".to_string())],
            FramePolicy::default(),
        );
        let local = |g: u64| (g as f64 * rate) as u64;
        let mut records: Vec<Interval> = Vec::new();
        for s in 0..=secs {
            let g = s * 1_000_000_000;
            records.push(
                Interval::basic(
                    IntervalType::complete(StateCode::CLOCK),
                    local(g),
                    0,
                    CpuId(0),
                    NodeId(node),
                    LogicalThreadId(0),
                )
                .with_extra(profile, "globalTime", Value::Uint(g)),
            );
            if s < secs {
                records.push(
                    Interval::basic(
                        IntervalType::complete(StateCode::mpi(ute_core::event::MpiOp::Barrier)),
                        local(g + 200_000_000),
                        (100_000_000_f64 * rate) as u64,
                        CpuId(0),
                        NodeId(node),
                        LogicalThreadId(0),
                    )
                    .with_extra(profile, "rank", Value::Uint(node as u64))
                    .with_extra(profile, "peer", Value::Uint(u32::MAX as u64))
                    .with_extra(profile, "msgSizeSent", Value::Uint(0))
                    .with_extra(profile, "address", Value::Uint(0)),
                );
            }
        }
        records.sort_by_key(|iv| iv.end());
        for iv in &records {
            w.push(iv).unwrap();
        }
        w.finish()
    }

    #[test]
    fn merged_output_is_globally_aligned_and_ordered() {
        let p = Profile::standard();
        let f0 = node_file(&p, 0, 1.0 + 100e-6, 10); // +100 ppm
        let f1 = node_file(&p, 1, 1.0 - 80e-6, 10); // −80 ppm
        let out = merge_files(&[&f0, &f1], &p, &MergeOptions::default()).unwrap();
        let r = IntervalFileReader::open(&out.merged, &p).unwrap();
        let ivs: Vec<Interval> = r.intervals().map(|x| x.unwrap()).collect();
        // End-ordered.
        for w in ivs.windows(2) {
            assert!(w[0].end() <= w[1].end());
        }
        // Barriers from both nodes happened at the same *global* instants
        // (200 ms into each second); after adjustment they should agree
        // within a few µs despite the ±100 ppm local drift.
        let barriers: Vec<&Interval> = ivs
            .iter()
            .filter(|iv| iv.itype.state == StateCode::mpi(ute_core::event::MpiOp::Barrier))
            .collect();
        assert_eq!(barriers.len(), 20);
        for pair in barriers.chunks(2) {
            let d = pair[0].start as i64 - pair[1].start as i64;
            assert!(d.abs() < 10_000, "barrier misalignment {d} ticks");
            assert_ne!(pair[0].node, pair[1].node);
        }
        assert_eq!(out.stats.fits.len(), 2);
        assert!((out.stats.fits[0].fit.ratio() - 1.0 / (1.0 + 100e-6)).abs() < 1e-6);
    }

    #[test]
    fn merged_file_has_node_field_and_union_tables() {
        let p = Profile::standard();
        let f0 = node_file(&p, 0, 1.0, 2);
        let f1 = node_file(&p, 1, 1.0, 2);
        let out = merge_files(&[&f0, &f1], &p, &MergeOptions::default()).unwrap();
        let r = IntervalFileReader::open(&out.merged, &p).unwrap();
        assert_eq!(r.mask, MASK_MERGED);
        assert_eq!(r.node, MERGED_NODE);
        assert_eq!(r.threads.len(), 2);
        assert_eq!(r.markers.len(), 1);
        let nodes: std::collections::HashSet<u16> =
            r.intervals().map(|iv| iv.unwrap().node.raw()).collect();
        assert_eq!(nodes.len(), 2, "records from both nodes present");
    }

    #[test]
    fn conflicting_marker_tables_rejected() {
        let p = Profile::standard();
        let f0 = node_file(&p, 0, 1.0, 1);
        // Build a second file with marker id 1 bound to a different name.
        let mut threads = ThreadTable::new();
        threads
            .register(ThreadEntry {
                task: TaskId(9),
                pid: Pid(1),
                system_tid: SystemThreadId(9),
                node: NodeId(9),
                logical: LogicalThreadId(0),
                ttype: ThreadType::Mpi,
            })
            .unwrap();
        let w = IntervalFileWriter::new(
            &p,
            MASK_PER_NODE,
            9,
            &threads,
            &[(1, "Different".to_string())],
            FramePolicy::default(),
        );
        let f9 = w.finish();
        let err = merge_files(&[&f0, &f9], &p, &MergeOptions::default()).unwrap_err();
        assert!(err.to_string().contains("marker id 1"), "{err}");
    }

    #[test]
    fn thread_type_filter_selects_threads() {
        let p = Profile::standard();
        let f0 = node_file(&p, 0, 1.0, 3);
        let opts = MergeOptions {
            thread_types: Some(vec![ThreadType::User]), // node files hold MPI threads
            ..MergeOptions::default()
        };
        let out = merge_files(&[&f0], &p, &opts).unwrap();
        let r = IntervalFileReader::open(&out.merged, &p).unwrap();
        // Only the CLOCK records survive.
        for iv in r.intervals() {
            assert_eq!(iv.unwrap().itype.state, StateCode::CLOCK);
        }
    }

    /// Builds a file holding one long split state (Begin … End) plus many
    /// small complete intervals so the merged file spans several frames.
    fn split_state_file(profile: &Profile, n_middle: u64) -> Vec<u8> {
        let mut threads = ThreadTable::new();
        threads
            .register(ThreadEntry {
                task: TaskId(0),
                pid: Pid(1),
                system_tid: SystemThreadId(0),
                node: NodeId(0),
                logical: LogicalThreadId(0),
                ttype: ThreadType::Mpi,
            })
            .unwrap();
        let mut w = IntervalFileWriter::new(
            profile,
            MASK_PER_NODE,
            0,
            &threads,
            &[],
            FramePolicy::default(),
        );
        let marker_begin = Interval::basic(
            IntervalType {
                state: StateCode::MARKER,
                bebits: BeBits::Begin,
            },
            0,
            10,
            CpuId(0),
            NodeId(0),
            LogicalThreadId(0),
        )
        .with_extra(profile, "markerId", Value::Uint(1))
        .with_extra(profile, "address", Value::Uint(0))
        .with_extra(profile, "addressEnd", Value::Uint(0));
        w.push(&marker_begin).unwrap();
        for i in 0..n_middle {
            let iv = Interval::basic(
                IntervalType::complete(StateCode::RUNNING),
                20 + i * 10,
                10,
                CpuId(0),
                NodeId(0),
                LogicalThreadId(0),
            );
            w.push(&iv).unwrap();
        }
        let end_t = 20 + n_middle * 10 + 5;
        let marker_end = Interval::basic(
            IntervalType {
                state: StateCode::MARKER,
                bebits: BeBits::End,
            },
            end_t,
            10,
            CpuId(0),
            NodeId(0),
            LogicalThreadId(0),
        )
        .with_extra(profile, "markerId", Value::Uint(1))
        .with_extra(profile, "address", Value::Uint(0))
        .with_extra(profile, "addressEnd", Value::Uint(0));
        w.push(&marker_end).unwrap();
        w.finish()
    }

    #[test]
    fn frame_head_pseudo_continuations_added() {
        let p = Profile::standard();
        // 40 middle records with 8-record frames → several frame
        // boundaries inside the open marker.
        let f = split_state_file(&p, 40);
        let opts = MergeOptions {
            policy: FramePolicy {
                max_records_per_frame: 8,
                max_frames_per_dir: 2,
            },
            filter_outliers: false,
            ..MergeOptions::default()
        };
        let out = merge_files(&[&f], &p, &opts).unwrap();
        assert!(
            out.stats.pseudo_added >= 4,
            "added {}",
            out.stats.pseudo_added
        );
        let r = IntervalFileReader::open(&out.merged, &p).unwrap();
        // Every frame after the first that starts inside the marker must
        // begin with a zero-duration Marker continuation record.
        let dirs: Vec<_> = r.directories().map(|d| d.unwrap()).collect();
        let mut frames_checked = 0;
        let marker_end_time = 20 + 40 * 10 + 5 + 10;
        for dir in &dirs {
            for e in &dir.entries {
                if e.start_time > 10 && e.end_time < marker_end_time as u64 {
                    let ivs = r.frame_intervals(e).unwrap();
                    let head = &ivs[0];
                    assert_eq!(head.itype.state, StateCode::MARKER, "frame head");
                    assert_eq!(head.itype.bebits, BeBits::Continuation);
                    assert_eq!(head.duration, 0);
                    frames_checked += 1;
                }
            }
        }
        assert!(frames_checked >= 3, "only {frames_checked} frames checked");
        // Disabling the feature removes them.
        let out2 = merge_files(
            &[&f],
            &p,
            &MergeOptions {
                frame_pseudo_intervals: false,
                ..opts
            },
        )
        .unwrap();
        assert_eq!(out2.stats.pseudo_added, 0);
    }

    #[test]
    fn slogmerge_produces_viewable_slog() {
        let p = Profile::standard();
        let f0 = node_file(&p, 0, 1.0 + 50e-6, 5);
        let f1 = node_file(&p, 1, 1.0 - 50e-6, 5);
        let (slog, stats) = slogmerge(
            &[&f0, &f1],
            &p,
            &MergeOptions::default(),
            BuildOptions {
                nframes: 8,
                preview_bins: 16,
                arrows: true,
            },
        )
        .unwrap();
        assert_eq!(slog.frames.len(), 8);
        assert_eq!(slog.threads.len(), 2);
        assert!(stats.records_out > 0);
        // Preview knows about the barrier time.
        assert!(slog
            .preview
            .counts
            .contains_key(&StateCode::mpi(ute_core::event::MpiOp::Barrier).0));
        // Round-trips to bytes.
        let bytes = slog.to_bytes();
        assert_eq!(SlogFile::from_bytes(&bytes).unwrap(), slog);
    }
}
