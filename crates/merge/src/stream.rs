//! Streaming building blocks for the merge pipeline.
//!
//! The parallel execution layer (`ute-pipeline`) runs each node's
//! decode → clock-adjust stage on a worker and streams the adjusted
//! intervals into the k-way merge through a bounded channel. For the
//! merged output to be byte-identical regardless of thread count, every
//! per-node stream must be *exactly* the same sequence the serial path
//! produces — which is the stable sort of the node's adjusted records by
//! end time.
//!
//! [`ReorderBuffer`] produces that sequence incrementally. Interval files
//! are end-ordered by construction (the writer rejects out-of-order
//! pushes), and the clock adjustment is a monotone map plus sub-tick
//! rounding, so an adjusted record can precede at most a few ticks of
//! already-seen records. The buffer holds items until every later input
//! could no longer sort before them ([`REORDER_WINDOW`] ticks of slack —
//! orders of magnitude more than rounding can move a record), then
//! releases them in `(end, arrival)` order: precisely a stable sort by
//! end time, emitted while the stream is still being decoded.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ute_core::error::Result;

/// Slack, in ticks, an adjusted record may sort behind later input.
///
/// Clock adjustment rounds the mapped start and duration independently,
/// so a record's adjusted end wanders less than ±2 ticks from the exact
/// monotone mapping; 1024 leaves a ~500× safety margin while keeping the
/// buffer a handful of records deep.
pub const REORDER_WINDOW: u64 = 1024;

/// An entry ordered by `(end, seq)` — min-heap via `Reverse` at the use
/// site. `seq` is arrival order, making the release order a *stable*
/// sort by end time.
struct Entry<T> {
    end: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.end, self.seq) == (other.end, other.seq)
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.end, self.seq).cmp(&(other.end, other.seq))
    }
}

/// Streaming stable-sort-by-end with a bounded look-behind window.
///
/// Push items in near-sorted order (each at most [`REORDER_WINDOW`]
/// ticks before the maximum end seen so far); items are released to the
/// sink as soon as no later input could sort before them. The released
/// sequence equals `sort_by_key(end)` (stable) over the whole input.
pub struct ReorderBuffer<T> {
    window: u64,
    seq: u64,
    max_end: u64,
    heap: BinaryHeap<Reverse<Entry<T>>>,
}

impl<T> ReorderBuffer<T> {
    /// A buffer with the default [`REORDER_WINDOW`].
    pub fn new() -> ReorderBuffer<T> {
        ReorderBuffer::with_window(REORDER_WINDOW)
    }

    /// A buffer with an explicit window (tests).
    pub fn with_window(window: u64) -> ReorderBuffer<T> {
        ReorderBuffer {
            window,
            seq: 0,
            max_end: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Accepts the next item (sort key `end`), releasing every buffered
    /// item that can no longer be displaced.
    pub fn push(
        &mut self,
        end: u64,
        item: T,
        sink: &mut impl FnMut(T) -> Result<()>,
    ) -> Result<()> {
        self.heap.push(Reverse(Entry {
            end,
            seq: self.seq,
            item,
        }));
        self.seq += 1;
        self.max_end = self.max_end.max(end);
        let release_below = self.max_end.saturating_sub(self.window);
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.end >= release_below {
                break;
            }
            let Reverse(e) = self.heap.pop().expect("peeked head exists");
            sink(e.item)?;
        }
        Ok(())
    }

    /// Releases everything still buffered, in order.
    pub fn finish(mut self, sink: &mut impl FnMut(T) -> Result<()>) -> Result<()> {
        while let Some(Reverse(e)) = self.heap.pop() {
            sink(e.item)?;
        }
        Ok(())
    }
}

impl<T> Default for ReorderBuffer<T> {
    fn default() -> Self {
        ReorderBuffer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(window: u64, input: &[(u64, u32)]) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        let mut sink = |x: (u64, u32)| {
            out.push(x);
            Ok(())
        };
        let mut buf = ReorderBuffer::with_window(window);
        for &(end, tag) in input {
            buf.push(end, (end, tag), &mut sink).unwrap();
        }
        buf.finish(&mut sink).unwrap();
        out
    }

    #[test]
    fn equals_stable_sort_for_windowed_disorder() {
        // Deterministic jitter of up to ±3 around a rising ramp.
        let mut state = 0xabcd_1234u64;
        let mut xorshift = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let input: Vec<(u64, u32)> = (0..2000u64)
            .map(|i| (10 + i * 2 - (xorshift() % 4), i as u32))
            .collect();
        let mut expect = input.clone();
        expect.sort_by_key(|x| x.0); // stable: ties keep arrival order
        assert_eq!(run(8, &input), expect);
    }

    #[test]
    fn ties_released_in_arrival_order() {
        let input = [(5, 0), (5, 1), (5, 2), (100, 3)];
        assert_eq!(run(4, &input), vec![(5, 0), (5, 1), (5, 2), (100, 3)]);
    }

    #[test]
    fn releases_early_instead_of_buffering_everything() {
        use std::cell::RefCell;
        let out = RefCell::new(Vec::new());
        let mut sink = |x: u64| {
            out.borrow_mut().push(x);
            Ok(())
        };
        let mut buf = ReorderBuffer::with_window(10);
        for end in (0..100u64).map(|i| i * 5) {
            buf.push(end, end, &mut sink).unwrap();
        }
        // Everything more than a window behind the max has been released.
        let released = out.borrow().len();
        assert!(released >= 95, "only {released} released");
        buf.finish(&mut sink).unwrap();
        assert_eq!(
            out.into_inner(),
            (0..100u64).map(|i| i * 5).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(run(16, &[]).is_empty());
    }
}
