//! The journaled stage runner behind `ute pipeline` / `resume` / `chaos`.
//!
//! `ute pipeline` runs five stages — trace, convert, merge, slogmerge,
//! stats — and this module makes the sequence crash-safe: every stage's
//! outputs are computed in memory, written to fsync'd `NAME.tmp.<pid>`
//! temps, *committed* to the run journal (content hashes and all), and
//! only then renamed into place. A `kill -9` anywhere leaves the
//! directory in one of three journal-recorded states per stage, and
//! [`cmd_resume`] replays the journal, verifies published artifacts by
//! content hash, completes any half-published stage from its temps, and
//! re-runs only what never committed — converging on byte-identical
//! output at any `--jobs`.
//!
//! Every store operation happens here, on the driving thread, in stage
//! order — pipeline workers never touch the journal — so the chaos
//! harness's abort-point numbering is deterministic for a given run
//! configuration regardless of worker count.

use std::path::{Path, PathBuf};

use ute_core::error::{PathContext, Result, UteError};
use ute_faults::FaultPlan;
use ute_store::{
    chaos, ArtifactStore, JournalRecord, ReplayState, RunJournal, StageStatus, StoreError,
};

use crate::Args;

/// One stage's computed outputs: artifacts to publish atomically, stale
/// files to remove at publish time, and the user-facing message.
pub(crate) struct StageOutput {
    /// `(final name, content)` pairs, in deterministic order.
    pub artifacts: Vec<(String, Vec<u8>)>,
    /// File names to delete on publish (missing-node suppression).
    pub removes: Vec<String>,
    /// The stage's textual output.
    pub msg: String,
}

impl StageOutput {
    /// A stage that publishes nothing (e.g. stats without `--out`).
    pub fn message(msg: String) -> StageOutput {
        StageOutput {
            artifacts: Vec::new(),
            removes: Vec::new(),
            msg,
        }
    }
}

/// Publishes stage outputs without a journal — the standalone-command
/// path (`ute trace` / `convert` / `scenario`): each artifact still goes
/// through an atomic temp-write + rename, so a crash mid-command never
/// leaves a torn file, but there is no commit record to resume from.
pub(crate) fn publish_plain(dir: &Path, so: &StageOutput) -> Result<()> {
    for (name, bytes) in &so.artifacts {
        ute_store::atomic_write(&dir.join(name), bytes)?;
    }
    for r in &so.removes {
        std::fs::remove_file(dir.join(r)).ok();
    }
    Ok(())
}

/// Parses `--disk-budget BYTES` (optional `k`/`m`/`g` suffix).
pub(crate) fn parse_budget(args: &Args) -> Result<Option<u64>> {
    let Some(v) = args.get("disk-budget") else {
        return Ok(None);
    };
    let (num, mult) = match v.trim_end_matches(['k', 'K', 'm', 'M', 'g', 'G']) {
        n if n.len() == v.len() => (n, 1u64),
        n => (
            n,
            match v.as_bytes()[v.len() - 1].to_ascii_lowercase() {
                b'k' => 1 << 10,
                b'm' => 1 << 20,
                _ => 1 << 30,
            },
        ),
    };
    let n: u64 = num
        .parse()
        .map_err(|_| UteError::Invalid(format!("--disk-budget: bad value `{v}`")))?;
    Ok(Some(n.saturating_mul(mult)))
}

/// Everything a pipeline run is a function of. The journal's `run-start`
/// record serializes the *deterministic* subset ([`RunPlan::config_pairs`]);
/// `jobs` and `disk_budget` are deliberately excluded — output bytes are
/// identical for every `--jobs`, so a resume may change both.
#[derive(Debug, Clone)]
pub(crate) struct RunPlan {
    pub workload: String,
    pub iterations: u32,
    pub strict: bool,
    pub jobs: usize,
    pub fault_plan: Option<String>,
    pub fault_seed: Option<u64>,
    pub out: PathBuf,
    pub disk_budget: Option<u64>,
}

impl RunPlan {
    pub fn from_args(args: &Args) -> Result<RunPlan> {
        Ok(RunPlan {
            workload: args.require("workload")?.to_string(),
            iterations: args.num("iterations", 256u32)?,
            strict: args.has("strict"),
            jobs: args.jobs()?,
            fault_plan: args.get("fault-plan").map(str::to_string),
            fault_seed: match args.get("fault-seed") {
                Some(_) => Some(args.num("fault-seed", 0u64)?),
                None => None,
            },
            out: PathBuf::from(args.require("out")?),
            disk_budget: parse_budget(args)?,
        })
    }

    /// The run config the journal records — everything `ute resume`
    /// needs to re-derive any stage, nothing that may legally change
    /// across a resume.
    pub fn config_pairs(&self) -> Vec<(String, String)> {
        let mut c = vec![
            ("workload".to_string(), self.workload.clone()),
            ("iterations".to_string(), self.iterations.to_string()),
            (
                "strict".to_string(),
                if self.strict { "1" } else { "0" }.to_string(),
            ),
        ];
        if let Some(p) = &self.fault_plan {
            c.push(("fault-plan".to_string(), p.clone()));
        }
        if let Some(s) = self.fault_seed {
            c.push(("fault-seed".to_string(), s.to_string()));
        }
        c
    }

    /// Reconstructs the plan from a replayed journal's `run-start`.
    pub fn from_config(
        config: &[(String, String)],
        out: &Path,
        jobs: usize,
        disk_budget: Option<u64>,
    ) -> Result<RunPlan> {
        let get = |k: &str| config.iter().find(|(ck, _)| ck == k).map(|(_, v)| v);
        let workload = get("workload").cloned().ok_or_else(|| {
            UteError::Invalid(format!(
                "{}: journal run-start has no workload — not a pipeline journal",
                RunJournal::path_in(out).display()
            ))
        })?;
        Ok(RunPlan {
            workload,
            iterations: get("iterations")
                .and_then(|v| v.parse().ok())
                .unwrap_or(256),
            strict: get("strict").map(String::as_str) == Some("1"),
            jobs,
            fault_plan: get("fault-plan").cloned(),
            fault_seed: get("fault-seed").and_then(|v| v.parse().ok()),
            out: out.to_path_buf(),
            disk_budget,
        })
    }

    fn resolve_fault_plan(&self, nodes: u16) -> Result<Option<FaultPlan>> {
        if let Some(spec) = &self.fault_plan {
            return Ok(Some(FaultPlan::parse(spec)?));
        }
        Ok(self.fault_seed.map(|s| FaultPlan::from_seed(s, nodes)))
    }

    fn out_str(&self) -> String {
        self.out.display().to_string()
    }

    /// Sub-command `Args` for one ingest stage, forwarding jobs/strict —
    /// the journaled twin of `ingest_stages`' helper.
    fn sub(&self, pairs: &[(&str, String)]) -> Args {
        let mut a = Args::default();
        for (k, v) in pairs {
            a.map.insert(k.to_string(), v.clone());
        }
        a.map.insert("jobs".to_string(), self.jobs.to_string());
        if self.strict {
            a.flags.push("strict".to_string());
        }
        a
    }
}

/// Why a pipeline run stopped.
pub(crate) enum Halt {
    /// Every stage published; `run-end` is in the journal.
    Done,
    /// A disk guardrail fired (budget or `ENOSPC`): partial results are
    /// journaled and the run is resumable.
    Resource(String),
    /// A soft chaos abort fired (tests/harness only): the directory is
    /// in exactly the state a kill would leave.
    Chaos(String),
}

/// A store-layer failure vs. everything else — kept apart so the driver
/// can turn guardrails and chaos aborts into graceful halts while other
/// errors propagate untouched.
enum StageFailure {
    Store(StoreError),
    Other(UteError),
}

impl From<StoreError> for StageFailure {
    fn from(e: StoreError) -> StageFailure {
        StageFailure::Store(e)
    }
}

impl From<UteError> for StageFailure {
    fn from(e: UteError) -> StageFailure {
        StageFailure::Other(e)
    }
}

/// Drives stages through the journal + artifact store protocol.
pub(crate) struct StageRunner {
    journal: RunJournal,
    store: ArtifactStore,
    replay: Option<ReplayState>,
}

impl StageRunner {
    /// Runs one stage under the publish protocol, or skips it when the
    /// journal already proves (by content hash) it published. `f` is
    /// only called when the stage really runs, and no file it describes
    /// is visible under its final name until after the commit record is
    /// durable.
    fn run_stage(
        &mut self,
        stage: &str,
        f: impl FnOnce() -> Result<StageOutput>,
    ) -> std::result::Result<String, StageFailure> {
        match self.replay.as_ref().and_then(|r| r.status(stage)).cloned() {
            Some(StageStatus::Published { artifacts }) => {
                if artifacts.iter().all(|m| self.store.verify_final(m)) {
                    ute_obs::counter("store/stages_skipped").inc();
                    return Ok(format!(
                        "resume: {stage}: already published, {} artifact(s) verified\n",
                        artifacts.len()
                    ));
                }
                eprintln!(
                    "ute: resume: {stage}: published artifact failed hash verification; \
                     re-running stage"
                );
            }
            Some(StageStatus::Committed {
                pid,
                artifacts,
                removes,
            }) => {
                // Complete publication from durable temps/finals if every
                // committed artifact still has its exact bytes somewhere.
                let complete = artifacts
                    .iter()
                    .all(|m| self.store.verify_final(m) || self.store.verify_temp(m, pid));
                if complete {
                    for m in &artifacts {
                        if !self.store.verify_final(m) {
                            self.store.promote(stage, m, pid)?;
                        }
                    }
                    for r in &removes {
                        std::fs::remove_file(self.store.dir().join(r)).ok();
                    }
                    self.journal.append(&JournalRecord::StagePublish {
                        stage: stage.to_string(),
                    })?;
                    ute_obs::counter("store/stages_skipped").inc();
                    return Ok(format!(
                        "resume: {stage}: publication completed from journal \
                         ({} artifact(s))\n",
                        artifacts.len()
                    ));
                }
                eprintln!(
                    "ute: resume: {stage}: committed temps lost or damaged; re-running stage"
                );
            }
            Some(StageStatus::Started) | None => {}
        }
        self.journal.append(&JournalRecord::StageStart {
            stage: stage.to_string(),
        })?;
        let out = f()?;
        let pid = std::process::id();
        let mut metas = Vec::with_capacity(out.artifacts.len());
        for (name, bytes) in &out.artifacts {
            metas.push(self.store.write_temp(stage, name, bytes)?);
        }
        // The durability pivot: after this record is fsync'd the stage
        // can always be completed from its temps, never before.
        self.journal.append(&JournalRecord::StageCommit {
            stage: stage.to_string(),
            pid,
            artifacts: metas.clone(),
            removes: out.removes.clone(),
        })?;
        for m in &metas {
            self.store.promote(stage, m, pid)?;
        }
        for r in &out.removes {
            std::fs::remove_file(self.store.dir().join(r)).ok();
        }
        self.journal.append(&JournalRecord::StagePublish {
            stage: stage.to_string(),
        })?;
        ute_obs::counter("store/stages_run").inc();
        Ok(out.msg)
    }

    fn finish(&mut self) -> std::result::Result<(), StageFailure> {
        if self.replay.as_ref().is_some_and(|r| r.run_ended) {
            return Ok(());
        }
        self.journal.append(&JournalRecord::RunEnd)?;
        Ok(())
    }
}

/// An optional extra stage appended after `stats` — how `ute profile`
/// journals its report artifacts through the same publish protocol as
/// the five core stages.
pub(crate) type ExtraStage<'a> =
    Option<(&'static str, Box<dyn FnOnce() -> Result<StageOutput> + 'a>)>;

/// The five pipeline stages, in order, against an open runner, plus the
/// caller's optional extra stage.
fn drive(
    plan: &RunPlan,
    runner: &mut StageRunner,
    msg: &mut String,
    extra: ExtraStage<'_>,
) -> std::result::Result<(), StageFailure> {
    let out = plan.out_str();
    msg.push_str(&runner.run_stage("trace", || {
        let w = crate::workload_by_name(&plan.workload, plan.iterations)?;
        let fplan = plan.resolve_fault_plan(w.config.nodes)?;
        crate::trace_outputs(&plan.workload, w, fplan)
    })?);
    let cargs = plan.sub(&[("in", out.clone())]);
    msg.push_str(&runner.run_stage("convert", || crate::convert_outputs(&cargs))?);
    let margs = plan.sub(&[("in", out.clone()), ("out", format!("{out}/merged.ivl"))]);
    msg.push_str(&runner.run_stage("merge", || {
        crate::merge_outputs(&margs).map(|(bytes, m)| StageOutput {
            artifacts: vec![("merged.ivl".to_string(), bytes)],
            removes: Vec::new(),
            msg: m,
        })
    })?);
    let sargs = plan.sub(&[("in", out.clone()), ("out", format!("{out}/run.slog"))]);
    msg.push_str(&runner.run_stage("slogmerge", || {
        crate::slogmerge_outputs(&sargs).map(|(bytes, m)| StageOutput {
            artifacts: vec![("run.slog".to_string(), bytes)],
            removes: Vec::new(),
            msg: m,
        })
    })?);
    let targs = plan.sub(&[("merged", format!("{out}/merged.ivl"))]);
    msg.push_str(&runner.run_stage("stats", || {
        crate::cmd_stats(&targs).map(StageOutput::message)
    })?);
    if let Some((name, f)) = extra {
        msg.push_str(&runner.run_stage(name, f)?);
    }
    runner.finish()
}

/// Pre-registers the store's counters so they appear (as zeros) in any
/// journaled run's metrics — "this never happened" stays distinguishable
/// from "this was never measured" even outside `ute report`.
fn register_store_counters() {
    for n in [
        "store/journal_records",
        "store/journal_replayed",
        "store/stages_run",
        "store/stages_skipped",
        "store/artifacts_published",
        "store/artifacts_verified",
        "store/temps_gc",
    ] {
        ute_obs::counter(n);
    }
}

/// Runs the journaled pipeline — fresh, or resumed from a replayed
/// journal — and classifies how it stopped.
fn execute(
    plan: &RunPlan,
    resume_from: Option<(RunJournal, ReplayState)>,
    extra: ExtraStage<'_>,
) -> Result<(String, Halt)> {
    register_store_counters();
    let mut msg = String::new();
    let r = (|| -> std::result::Result<(), StageFailure> {
        let mut runner = match resume_from {
            None => {
                std::fs::create_dir_all(&plan.out).in_file(&plan.out)?;
                let store = ArtifactStore::new(&plan.out).with_budget(plan.disk_budget);
                // Startup GC: a fresh run owns the directory — every
                // leftover temp is a dead run's residue.
                let swept = store.gc_stale_temps(&[])?;
                if swept > 0 {
                    eprintln!(
                        "ute: store: swept {swept} stale temp file(s) from {}",
                        plan.out.display()
                    );
                }
                let journal = RunJournal::create(&plan.out, &plan.config_pairs())?;
                StageRunner {
                    journal,
                    store,
                    replay: None,
                }
            }
            Some((journal, state)) => {
                msg.push_str(&format!(
                    "resume: {}: replayed {} journal record(s){}\n",
                    plan.out.display(),
                    state.records,
                    if state.torn_tail {
                        ", torn tail discarded"
                    } else {
                        ""
                    }
                ));
                let store = ArtifactStore::new(&plan.out).with_budget(plan.disk_budget);
                // Keep only temps a committed-but-unpublished stage can
                // still publish from; everything else is stale.
                let mut keep = Vec::new();
                for (_, st) in &state.stages {
                    if let StageStatus::Committed { pid, artifacts, .. } = st {
                        for a in artifacts {
                            keep.push(ArtifactStore::temp_name(&a.name, *pid));
                        }
                    }
                }
                store.gc_stale_temps(&keep)?;
                StageRunner {
                    journal,
                    store,
                    replay: Some(state),
                }
            }
        };
        drive(plan, &mut runner, &mut msg, extra)
    })();
    match r {
        Ok(()) => Ok((msg, Halt::Done)),
        Err(StageFailure::Store(e)) if e.is_resource_exhausted() => {
            Ok((msg, Halt::Resource(e.to_string())))
        }
        Err(StageFailure::Store(e)) if e.is_chaos_abort() => Ok((msg, Halt::Chaos(e.to_string()))),
        Err(StageFailure::Store(e)) => Err(e.into()),
        Err(StageFailure::Other(e)) => Err(e),
    }
}

/// Maps a halt to the command result: guardrails are a *graceful*
/// partial-results exit (completed stages stay published and journaled),
/// chaos aborts surface as errors for the harness to catch.
fn finish_outcome(msg: String, halt: Halt) -> Result<String> {
    match halt {
        Halt::Done => Ok(msg),
        Halt::Resource(why) => Ok(format!(
            "{msg}ute: pipeline stopped early: {why}\n\
             ute: completed stages are published and journaled\n"
        )),
        Halt::Chaos(why) => Err(UteError::Invalid(why)),
    }
}

/// `ute pipeline` — the journaled five-stage run.
pub(crate) fn cmd_pipeline(args: &Args) -> Result<String> {
    let plan = RunPlan::from_args(args)?;
    let (msg, halt) = execute(&plan, None, None)?;
    finish_outcome(msg, halt)
}

/// `ute profile` — the journaled pipeline with a sixth, `profile` stage
/// appended: `finish` stops the sampler, builds the report, and returns
/// its artifacts (`profile.folded`, `profile.json`), which go through
/// the same temp-write → commit → promote protocol as every other
/// stage — a crash mid-profile leaves a resumable directory.
pub(crate) fn cmd_profile_run(
    args: &Args,
    finish: impl FnOnce() -> Result<StageOutput>,
) -> Result<String> {
    let plan = RunPlan::from_args(args)?;
    let (msg, halt) = execute(&plan, None, Some(("profile", Box::new(finish))))?;
    finish_outcome(msg, halt)
}

/// `ute resume` — replay the journal of an interrupted `ute pipeline`
/// run and finish it: verified-published stages are skipped, committed
/// stages complete publication from their temps, everything else
/// re-runs. Output is byte-identical to an uninterrupted run, at any
/// `--jobs`.
pub(crate) fn cmd_resume(args: &Args) -> Result<String> {
    let out = PathBuf::from(args.require("in")?);
    let (journal, state) = RunJournal::open_for_resume(&out)?;
    let jobs = args.jobs()?;
    let plan = RunPlan::from_config(&state.config, &out, jobs, parse_budget(args)?)?;
    let (msg, halt) = execute(&plan, Some((journal, state)), None)?;
    finish_outcome(msg, halt)
}

/// `ute chaos` — the process-kill chaos harness: run a clean reference
/// pipeline, then for each seeded kill run a victim pipeline that dies
/// at a chosen abort point (`--mode point`: child armed via env hard
/// abort; `timed`: SIGKILL on a timer; `soft`: in-process error-return
/// abort), resume it, and prove the resumed directory is byte-identical
/// to the clean run with no stale temps.
pub(crate) fn cmd_chaos(args: &Args) -> Result<String> {
    let seed: u64 = args.num("seed", 1u64)?;
    let kills: u64 = args.num("kills", 1u64)?;
    let mode = args.get("mode").unwrap_or("point");
    if !["point", "timed", "soft"].contains(&mode) {
        return Err(UteError::Invalid(format!(
            "--mode: unknown `{mode}` (point|timed|soft)"
        )));
    }
    let base = PathBuf::from(args.require("out")?);
    let mut plan = RunPlan::from_args(args)?;
    plan.out = base.join("clean");

    // Clean reference run, counting the abort points one pipeline
    // crosses — the seed space for kill placement.
    let before = chaos::points_crossed();
    let (_cmsg, halt) = execute(&plan, None, None)?;
    if !matches!(halt, Halt::Done) {
        return Err(UteError::Invalid(
            "chaos: clean run did not complete".into(),
        ));
    }
    let points = chaos::points_crossed() - before;
    let mut msg = format!("chaos: seed {seed}: clean run crossed {points} abort point(s)\n");

    for k in 0..kills {
        let idx = ute_faults::chaos::pick_point(seed, k, points);
        let victim = base.join(format!("kill{k}"));
        let mut vplan = plan.clone();
        vplan.out = victim.clone();
        ute_obs::counter("chaos/kills").inc();
        match mode {
            "soft" => {
                chaos::arm_soft(chaos::points_crossed() + idx);
                let r = execute(&vplan, None, None);
                chaos::disarm_soft();
                match r? {
                    (_, Halt::Chaos(why)) => {
                        msg.push_str(&format!("chaos: kill {k}: {why}\n"));
                    }
                    _ => {
                        return Err(UteError::Invalid(format!(
                            "chaos: kill {k}: soft abort armed at point {idx} never fired"
                        )))
                    }
                }
            }
            _ => {
                let exe = std::env::current_exe()?;
                let argv = pipeline_argv(&vplan);
                if mode == "point" {
                    let status = ute_faults::chaos::spawn_hard_kill(&exe, &argv, idx)?;
                    if status.success() {
                        return Err(UteError::Invalid(format!(
                            "chaos: kill {k}: child survived hard abort armed at point {idx}"
                        )));
                    }
                    msg.push_str(&format!(
                        "chaos: kill {k}: child died at armed point {idx} ({status})\n"
                    ));
                } else {
                    // 1..=80ms: long enough to get into the run, short
                    // enough to land before a small pipeline finishes.
                    let delay = ute_faults::chaos::pick_point(seed ^ 0xD1E5, k, 80) + 1;
                    let status = ute_faults::chaos::spawn_timed_kill(&exe, &argv, delay)?;
                    msg.push_str(&format!(
                        "chaos: kill {k}: child killed after {delay}ms ({status})\n"
                    ));
                }
            }
        }
        // Resume the victim. A timed kill can land before the journal's
        // run-start is durable — then there is nothing to replay and the
        // run restarts from scratch, which must converge all the same.
        ute_obs::counter("chaos/resumes").inc();
        let (rmsg, rhalt) = match RunJournal::open_for_resume(&victim) {
            Ok((journal, state)) => {
                let rplan = RunPlan::from_config(&state.config, &victim, plan.jobs, None)?;
                execute(&rplan, Some((journal, state)), None)?
            }
            Err(_) => execute(&vplan, None, None)?,
        };
        if !matches!(rhalt, Halt::Done) {
            return Err(UteError::Invalid(format!(
                "chaos: kill {k}: resume did not complete:\n{rmsg}"
            )));
        }
        // Byte-compare against the clean run: everything but the journal
        // (whose record sequence legitimately differs) must be identical,
        // and no in-flight temp may survive the resume.
        let diffs = ute_faults::chaos::diff_dirs(&plan.out, &victim, |n| {
            n == ute_store::journal::JOURNAL_NAME || n.contains(".tmp.")
        })?;
        if !diffs.is_empty() {
            return Err(UteError::Invalid(format!(
                "chaos: kill {k}: resumed artifacts differ from clean run: {diffs:?}"
            )));
        }
        let temps = ute_faults::chaos::list_temps(&victim)?;
        if !temps.is_empty() {
            return Err(UteError::Invalid(format!(
                "chaos: kill {k}: stale temps after resume: {temps:?}"
            )));
        }
        msg.push_str(&format!(
            "chaos: kill {k}: resume verified byte-identical, no stale temps\n"
        ));
    }
    msg.push_str(&format!("chaos: seed {seed}: {kills} kill(s) verified\n"));
    Ok(msg)
}

/// The argv a chaos child runs: the victim's pipeline invocation.
fn pipeline_argv(plan: &RunPlan) -> Vec<String> {
    let mut v = vec![
        "pipeline".to_string(),
        "--workload".to_string(),
        plan.workload.clone(),
        "--out".to_string(),
        plan.out_str(),
        "--iterations".to_string(),
        plan.iterations.to_string(),
        "--jobs".to_string(),
        plan.jobs.to_string(),
    ];
    if plan.strict {
        v.push("--strict".to_string());
    }
    if let Some(p) = &plan.fault_plan {
        v.push("--fault-plan".to_string());
        v.push(p.clone());
    }
    if let Some(s) = plan.fault_seed {
        v.push("--fault-seed".to_string());
        v.push(s.to_string());
    }
    v
}
