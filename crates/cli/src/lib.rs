//! # ute-cli — the `ute` command-line tool
//!
//! Drives the whole Figure 2 pipeline from a shell:
//!
//! ```text
//! ute trace     --workload sppm --out trace_dir        # run the simulator
//! ute convert   --in trace_dir                         # raw → interval files
//! ute merge     --in trace_dir --out merged.ivl        # adjust clocks + merge
//! ute slogmerge --in trace_dir --out run.slog          # merge into SLOG
//! ute stats     --merged merged.ivl [--program p.uts]  # tables (TSV)
//! ute preview   --slog run.slog                        # whole-run preview
//! ute view      --slog run.slog --kind thread          # time-space diagrams
//! ute clockfit  --in trace_dir                         # per-node clock fits
//! ute pipeline  --workload flash --out dir             # everything at once
//! ```
//!
//! Every command is implemented as a library function returning its
//! textual output so the test suite exercises them end to end.
//!
//! Two observability switches apply to every subcommand: `--metrics`
//! prints the per-stage metrics table (TSV) to stderr after the command
//! finishes, and `--self-trace FILE` captures the run's own pipeline
//! spans and writes them as a UTE interval file — the framework traced
//! with its own format (view it with `ute preview --ivl FILE`). The
//! `report` subcommand runs the whole pipeline and emits every metric
//! as machine-readable JSON.

pub mod selftrace;
mod stages;

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use ute_clock::ratio::RatioEstimator;
use ute_cluster::Simulator;
use ute_convert::{convert_job_pooled, ConvertOptions};
use ute_core::error::{Result, UteError};
use ute_core::ids::NodeId;
use ute_faults::FaultPlan;
use ute_format::codecio::{read_thread_table_file, thread_table_to_bytes};
use ute_format::file::{FramePolicy, IntervalFileReader};
use ute_format::profile::Profile;
use ute_merge::MergeOptions;
use ute_pipeline::{merge_files_jobs, slogmerge_jobs};
use ute_rawtrace::file::{RawTraceFile, HEADER_LEN};
use ute_slog::builder::BuildOptions;
use ute_slog::file::SlogFile;
use ute_stats::predefined::predefined_tables;
use ute_stats::{parse_program, run_tables};
use ute_view::model::{build_view, ViewConfig, ViewKind};
use ute_workloads::{flash, micro, patterns, scaling, sppm, Workload};

/// Parsed `--flag value` arguments.
#[derive(Debug, Default)]
pub struct Args {
    map: HashMap<String, String>,
    flags: Vec<String>,
}

/// The bare switches the CLI knows. Every other `--key` takes a value;
/// keeping this list explicit is what lets `Args::parse` reject
/// `--in --no-filter` (a valued key swallowing a switch) instead of
/// silently demoting `--in` to a flag.
const KNOWN_SWITCHES: &[&str] = &[
    "no-filter",
    "no-arrows",
    "connected",
    "hide-running",
    "metrics",
    "stable",
    "strict",
    "oracles",
    "lenient-tail",
    "all",
    "json",
    "describe",
    "profiler",
];

impl Args {
    /// Parses `--key value` and bare `--switch` arguments.
    ///
    /// Switches are recognized by name ([`KNOWN_SWITCHES`]); any other
    /// `--key` must be followed by a value, and a `--key` followed by
    /// another `--token` (or the end of the argument list) is an error.
    pub fn parse(argv: &[String]) -> Result<Args> {
        let mut a = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let k = &argv[i];
            if !k.starts_with("--") {
                return Err(UteError::Invalid(format!("unexpected argument `{k}`")));
            }
            let key = k.trim_start_matches("--").to_string();
            if KNOWN_SWITCHES.contains(&key.as_str()) {
                a.flags.push(key);
                i += 1;
            } else if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                a.map.insert(key, argv[i + 1].clone());
                i += 2;
            } else {
                return Err(UteError::Invalid(format!("missing value for --{key}")));
            }
        }
        Ok(a)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(|s| s.as_str())
    }

    fn require(&self, key: &str) -> Result<&str> {
        self.get(key)
            .ok_or_else(|| UteError::Invalid(format!("missing required --{key}")))
    }

    fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| UteError::Invalid(format!("--{key}: bad value `{v}`"))),
        }
    }

    /// The `--jobs N` worker count; defaults to the machine's available
    /// parallelism. `--jobs 1` forces the serial path.
    fn jobs(&self) -> Result<usize> {
        let jobs = self.num("jobs", ute_pipeline::default_jobs())?;
        if jobs == 0 {
            return Err(UteError::Invalid("--jobs: must be at least 1".into()));
        }
        Ok(jobs)
    }

    /// Whether salvage-mode ingestion is active. The CLI salvages by
    /// default — truncated, corrupt, or missing inputs degrade with
    /// warnings instead of aborting; `--strict` restores fail-fast.
    /// (Library APIs are the opposite: strict unless opted in.)
    fn salvage(&self) -> bool {
        !self.has("strict")
    }

    /// The fault plan from `--fault-plan SPEC` or `--fault-seed N`
    /// (seeded plans need the node count).
    fn fault_plan(&self, nodes: u16) -> Result<Option<FaultPlan>> {
        if let Some(spec) = self.get("fault-plan") {
            return Ok(Some(FaultPlan::parse(spec)?));
        }
        match self.get("fault-seed") {
            Some(_) => {
                let seed = self.num("fault-seed", 0u64)?;
                Ok(Some(FaultPlan::from_seed(seed, nodes)))
            }
            None => Ok(None),
        }
    }
}

fn workload_by_name(name: &str, iterations: u32) -> Result<Workload> {
    // `scenario:SEED` expands a generated scenario anywhere a workload
    // name is accepted (`ute pipeline --workload scenario:42 ...`).
    if let Some(seed) = name.strip_prefix("scenario:") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| UteError::Invalid(format!("bad scenario seed in `{name}`")))?;
        return scenario_workload(&ute_scenario::ScenarioSpec::from_seed(seed));
    }
    // `torture:SEED` is the 256+-node sharded-merge stress preset.
    if let Some(seed) = name.strip_prefix("torture:") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| UteError::Invalid(format!("bad torture seed in `{name}`")))?;
        return scenario_workload(&ute_scenario::ScenarioSpec::torture(seed));
    }
    Ok(match name {
        "sppm" => sppm::workload(sppm::SppmParams::default()),
        "flash" => flash::workload(flash::FlashParams::default()),
        "pingpong" => micro::ping_pong(32, 1 << 14),
        "stencil" => micro::stencil(4, 16, 1 << 12),
        "allreduce" => micro::allreduce_sweep(4, 10),
        "wavefront" => patterns::wavefront(6, 12, 4096),
        "sendrecv" => micro::sendrecv_shift(4, 12, 4096),
        "masterworker" => patterns::master_worker(4, 8, 8192),
        "straggler" => micro::straggler(4, 8, 2, 4),
        "scaling" => scaling::scaled_job(iterations),
        other => {
            return Err(UteError::Invalid(format!(
                "unknown workload `{other}` \
                 (sppm|flash|pingpong|stencil|allreduce|wavefront|sendrecv|masterworker|\
                 straggler|scaling|scenario:SEED|torture:SEED)"
            )))
        }
    })
}

/// Expands a scenario spec into a [`Workload`]. The name is leaked: a
/// handful of scenario names per process, each a few bytes, in exchange
/// for keeping `Workload::name` a `&'static str` everywhere else.
fn scenario_workload(spec: &ute_scenario::ScenarioSpec) -> Result<Workload> {
    let sc = ute_scenario::generate(spec)?;
    Ok(Workload {
        name: Box::leak(format!("scenario_{}", spec.seed).into_boxed_str()),
        config: sc.config,
        job: sc.job,
    })
}

fn estimator_by_name(name: &str) -> Result<RatioEstimator> {
    Ok(match name {
        "rms" => RatioEstimator::RmsSegments,
        "rmsall" => RatioEstimator::RmsAllSlopes,
        "last" => RatioEstimator::LastPair,
        "piecewise" => RatioEstimator::Piecewise,
        other => {
            return Err(UteError::Invalid(format!(
                "unknown estimator `{other}` (rms|rmsall|last|piecewise)"
            )))
        }
    })
}

/// `ute trace`: run a workload, writing raw trace files, the thread
/// table, and the standard profile into `--out`.
///
/// `--fault-seed N` (or `--fault-plan SPEC`) injects deterministic
/// faults: buffer-level kinds (dropped flushes, clock jumps) act inside
/// the tracing buffers during the run; byte-level kinds (truncation,
/// bit flips, overrun splices) mutate the raw bytes as they are
/// written; a `missing` fault suppresses the node's file entirely.
pub fn cmd_trace(args: &Args) -> Result<String> {
    let name = args.require("workload")?;
    let iterations = args.num("iterations", 256u32)?;
    let out = PathBuf::from(args.require("out")?);
    let w = workload_by_name(name, iterations)?;
    let plan = args.fault_plan(w.config.nodes)?;
    run_and_write_trace(name.to_string(), w, plan, &out)
}

/// Simulates a workload and writes its raw trace files, thread table,
/// and profile into `out`, applying an optional fault plan — the trace
/// stage shared by `ute trace`, `ute pipeline`, and `ute scenario`.
/// `name` is the user-facing label for the run (the CLI-typed workload
/// name, or `scenario seed N`).
fn run_and_write_trace(
    name: String,
    w: Workload,
    plan: Option<FaultPlan>,
    out: &Path,
) -> Result<String> {
    use ute_core::error::PathContext;
    std::fs::create_dir_all(out).in_file(out)?;
    let so = trace_outputs(&name, w, plan)?;
    stages::publish_plain(out, &so)?;
    Ok(so.msg)
}

/// The trace stage as pure data: simulate, apply the fault plan, and
/// return every artifact as bytes — `threads.utt` and `profile.ute`
/// included. Nothing touches the filesystem; the caller decides whether
/// to publish plainly ([`stages::publish_plain`]) or through the run
/// journal's atomic commit protocol.
fn trace_outputs(
    name: &str,
    mut w: Workload,
    plan: Option<FaultPlan>,
) -> Result<stages::StageOutput> {
    if let Some(plan) = &plan {
        w.config.trace.faults = Some(plan.clone());
    }
    let _span = ute_obs::Span::enter("trace", format!("simulate {name}"));
    let res = Simulator::new(w.config, &w.job)?.run()?;
    let mut faulted = 0usize;
    let mut suppressed = 0usize;
    let mut artifacts = Vec::new();
    let mut removes = Vec::new();
    for f in &res.raw_files {
        let fname = RawTraceFile::file_name("trace", f.node);
        match &plan {
            None => artifacts.push((fname, f.to_bytes()?)),
            Some(plan) => {
                let node = f.node.raw();
                if plan.for_node(node).next().is_some() {
                    faulted += 1;
                }
                match plan.apply_to_file(node, f.to_bytes()?, HEADER_LEN) {
                    Some(bytes) => artifacts.push((fname, bytes)),
                    None => {
                        suppressed += 1;
                        // A stale file from a previous run would mask
                        // the missing-node fault.
                        removes.push(fname);
                    }
                }
            }
        }
    }
    artifacts.push((
        "threads.utt".to_string(),
        thread_table_to_bytes(&res.threads),
    ));
    artifacts.push(("profile.ute".to_string(), Profile::standard().to_bytes()));
    let mut msg = format!(
        "traced {name}: {} nodes, {} records, {:.6}s simulated, overhead {}\n",
        res.raw_files.len(),
        res.stats.events_cut,
        res.stats.end_time.as_secs_f64(),
        res.stats.trace_overhead,
    );
    if let Some(plan) = &plan {
        msg.push_str(&format!(
            "injected faults [{plan}]: {faulted} nodes faulted, {suppressed} files suppressed\n"
        ));
    }
    Ok(stages::StageOutput {
        artifacts,
        removes,
        msg,
    })
}

/// Finds the node numbers for which `<prefix>.<N>.<ext>` exists in
/// `dir`, sorted. Unlike a break-at-first-hole scan, this sees files
/// *past* a missing node — the whole point of salvage mode.
fn scan_node_files(dir: &Path, prefix: &str, ext: &str) -> Result<Vec<u16>> {
    let mut nodes = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(prefix).and_then(|r| r.strip_prefix('.')) else {
            continue;
        };
        let Some(num) = rest.strip_suffix(ext).and_then(|r| r.strip_suffix('.')) else {
            continue;
        };
        if let Ok(n) = num.parse::<u16>() {
            nodes.push(n);
        }
    }
    nodes.sort_unstable();
    nodes.dedup();
    Ok(nodes)
}

/// Nodes absent from the contiguous range `0..=max(present)`.
fn missing_nodes(present: &[u16]) -> Vec<u16> {
    match present.last() {
        None => Vec::new(),
        Some(&max) => (0..=max).filter(|n| !present.contains(n)).collect(),
    }
}

/// Loads a trace directory's raw files. In salvage mode, files past a
/// hole are still found, unreadable files are dropped with a warning,
/// and the second return value lists the nodes that could not be
/// loaded; strict mode fails on the first unreadable file (holes are
/// reported as missing, not errors — a gap in the numbering is not
/// itself corrupt data).
fn load_raw_dir(
    dir: &Path,
    salvage: bool,
) -> Result<(
    Vec<RawTraceFile>,
    ute_format::thread_table::ThreadTable,
    Profile,
    Vec<u16>,
)> {
    let threads = read_thread_table_file(&dir.join("threads.utt"))?;
    let profile = Profile::read_from(&dir.join("profile.ute"))?;
    let present = scan_node_files(dir, "trace", "raw")?;
    let mut lost = missing_nodes(&present);
    let mut files = Vec::new();
    for &node in &present {
        let p = dir.join(RawTraceFile::file_name("trace", NodeId(node)));
        if salvage {
            match RawTraceFile::read_from_salvage(&p) {
                Ok((f, report)) => {
                    if !report.is_clean() {
                        eprintln!(
                            "ute: warning: salvage: {}: kept {} records, skipped {} \
                             ({} bytes, {} resyncs{})",
                            p.display(),
                            report.records,
                            report.records_skipped,
                            report.bytes_skipped,
                            report.resyncs,
                            if report.truncated_tail {
                                ", truncated tail"
                            } else {
                                ""
                            },
                        );
                    }
                    files.push(f);
                }
                Err(e) => {
                    eprintln!("ute: warning: salvage: dropping {}: {e}", p.display());
                    lost.push(node);
                }
            }
        } else {
            files.push(RawTraceFile::read_from(&p)?);
        }
    }
    if files.is_empty() {
        return Err(UteError::NotFound(format!(
            "no trace.N.raw files in {}",
            dir.display()
        )));
    }
    lost.sort_unstable();
    Ok((files, threads, profile, lost))
}

/// `ute convert`: raw trace files → per-node interval files. Salvages
/// corrupt raw files by default (`--strict` restores fail-fast): the
/// decoder resynchronizes on the next valid hookword after a corrupt
/// record, and states left open by a truncated stream become synthetic
/// truncated intervals.
pub fn cmd_convert(args: &Args) -> Result<String> {
    let dir = PathBuf::from(args.require("in")?);
    let so = convert_outputs(args)?;
    stages::publish_plain(&dir, &so)?;
    Ok(so.msg)
}

/// The convert stage as pure data (see [`trace_outputs`]).
fn convert_outputs(args: &Args) -> Result<stages::StageOutput> {
    let jobs = args.jobs()?;
    let salvage = args.salvage();
    let dir = PathBuf::from(args.require("in")?);
    let (files, threads, profile, lost) = load_raw_dir(&dir, salvage)?;
    let copts = ConvertOptions {
        policy: FramePolicy::default(),
        lenient: salvage,
        salvage,
    };
    let outputs = convert_job_pooled(&files, &threads, &profile, &copts, jobs)?;
    let mut msg = String::new();
    let mut artifacts = Vec::new();
    for o in outputs {
        msg.push_str(&format!(
            "node {}: {} events → {} intervals ({} bytes)\n",
            o.node,
            o.stats.events_in,
            o.stats.intervals_out,
            o.interval_file.len()
        ));
        artifacts.push((format!("trace.{}.ivl", o.node.raw()), o.interval_file));
    }
    if !lost.is_empty() {
        msg.push_str(&format!(
            "salvage: {} node(s) unreadable or missing: {:?}\n",
            lost.len(),
            lost
        ));
    }
    Ok(stages::StageOutput {
        artifacts,
        removes: Vec::new(),
        msg,
    })
}

/// Loads the per-node interval files of `dir`. In salvage mode the scan
/// tolerates holes and unreadable files, returning the nodes lost; in
/// strict mode it keeps the historical break-at-first-hole behavior.
fn load_interval_files(dir: &Path, salvage: bool) -> Result<(Vec<Vec<u8>>, Vec<u16>)> {
    let mut files = Vec::new();
    let mut lost = Vec::new();
    if salvage {
        let present = scan_node_files(dir, "trace", "ivl")?;
        lost = missing_nodes(&present);
        for &node in &present {
            let p = dir.join(format!("trace.{node}.ivl"));
            match std::fs::read(&p) {
                Ok(bytes) => files.push(bytes),
                Err(e) => {
                    eprintln!("ute: warning: salvage: dropping {}: {e}", p.display());
                    lost.push(node);
                }
            }
        }
        lost.sort_unstable();
    } else {
        for node in 0u16.. {
            let p = dir.join(format!("trace.{node}.ivl"));
            if !p.exists() {
                break;
            }
            files.push(std::fs::read(&p)?);
        }
    }
    if files.is_empty() {
        return Err(UteError::NotFound(format!(
            "no trace.N.ivl files in {} (run `ute convert` first)",
            dir.display()
        )));
    }
    Ok((files, lost))
}

fn merge_options(args: &Args, gap_nodes: Vec<u16>) -> Result<MergeOptions> {
    Ok(MergeOptions {
        estimator: estimator_by_name(args.get("estimator").unwrap_or("rms"))?,
        filter_outliers: !args.has("no-filter"),
        salvage: args.salvage(),
        gap_nodes,
        ..MergeOptions::default()
    })
}

/// `ute merge`: per-node interval files → one merged interval file.
///
/// Salvage mode (the default; `--strict` restores fail-fast) proceeds
/// when a node's file is missing or unreadable: the node is dropped,
/// a zero-duration Gap pseudo-record marks it in the merged output,
/// and `salvage/nodes_degraded` counts it. This command is the single
/// place that counter is bumped, so a staged `ute pipeline` run (which
/// also re-reads the files for slogmerge) counts each degraded node
/// once.
pub fn cmd_merge(args: &Args) -> Result<String> {
    let out = PathBuf::from(args.require("out")?);
    let (bytes, msg) = merge_outputs(args)?;
    ute_store::atomic_write(&out, &bytes)?;
    Ok(msg)
}

/// The merge stage as pure data: the merged file's bytes plus the
/// message. Counter bumps (`salvage/nodes_degraded`) happen here — once
/// per merge, wherever the bytes end up.
fn merge_outputs(args: &Args) -> Result<(Vec<u8>, String)> {
    let dir = PathBuf::from(args.require("in")?);
    let profile = Profile::read_from(&dir.join("profile.ute"))?;
    let (files, lost) = load_interval_files(&dir, args.salvage())?;
    let refs: Vec<&[u8]> = files.iter().map(|f| f.as_slice()).collect();
    let merged = merge_files_jobs(
        &refs,
        &profile,
        &merge_options(args, lost.clone())?,
        args.jobs()?,
    )?;
    let degraded = lost.len() as u64 + merged.stats.nodes_degraded;
    if degraded > 0 {
        ute_obs::counter("salvage/nodes_degraded").add(degraded);
    }
    let mut msg = format!(
        "merged {} files: {} records in, {} out ({} pseudo)\n",
        files.len(),
        merged.stats.records_in,
        merged.stats.records_out,
        merged.stats.pseudo_added
    );
    if degraded > 0 {
        msg.push_str(&format!(
            "salvage: {degraded} node(s) degraded ({} missing at load, {} dropped in merge)\n",
            lost.len(),
            merged.stats.nodes_degraded
        ));
    }
    for f in &merged.stats.fits {
        msg.push_str(&format!(
            "  node {}: ratio {:.9} from {} samples\n",
            f.node,
            f.fit.ratio(),
            f.samples_used
        ));
    }
    Ok((merged.merged, msg))
}

/// `ute slogmerge`: per-node interval files → a SLOG file. Salvage
/// semantics match `ute merge`, except degraded nodes are not counted
/// again (see [`cmd_merge`]) and the SLOG carries no gap records — a
/// missing node simply has no timelines.
pub fn cmd_slogmerge(args: &Args) -> Result<String> {
    let out = PathBuf::from(args.require("out")?);
    let (bytes, msg) = slogmerge_outputs(args)?;
    ute_store::atomic_write(&out, &bytes)?;
    Ok(msg)
}

/// The slogmerge stage as pure data (see [`merge_outputs`]).
fn slogmerge_outputs(args: &Args) -> Result<(Vec<u8>, String)> {
    let dir = PathBuf::from(args.require("in")?);
    let profile = Profile::read_from(&dir.join("profile.ute"))?;
    let (files, _lost) = load_interval_files(&dir, args.salvage())?;
    let refs: Vec<&[u8]> = files.iter().map(|f| f.as_slice()).collect();
    let build = BuildOptions {
        nframes: args.num("frames", 64usize)?,
        preview_bins: args.num("bins", 128u32)?,
        arrows: !args.has("no-arrows"),
    };
    let (slog, stats) = slogmerge_jobs(
        &refs,
        &profile,
        &merge_options(args, Vec::new())?,
        build,
        args.jobs()?,
    )?;
    let msg = format!(
        "slogmerge: {} records in, {} merged, {} frames, {} slog records\n",
        stats.records_in,
        stats.records_out,
        slog.frames.len(),
        slog.total_records()
    );
    Ok((slog.to_bytes(), msg))
}

/// `ute stats`: run the statistics utility over a merged interval file.
pub fn cmd_stats(args: &Args) -> Result<String> {
    let merged = std::fs::read(args.require("merged")?)?;
    let profile_path = args.get("profile").map(PathBuf::from).unwrap_or_else(|| {
        Path::new(args.get("merged").unwrap())
            .parent()
            .unwrap_or(Path::new("."))
            .join("profile.ute")
    });
    let profile = Profile::read_from(&profile_path)?;
    let reader = IntervalFileReader::open(&merged, &profile)?;
    let intervals: Result<Vec<_>> = reader.intervals().collect();
    let intervals = intervals?;
    let specs = match args.get("program") {
        Some(p) => parse_program(&std::fs::read_to_string(p)?)?,
        None => predefined_tables(),
    };
    let tables = run_tables(&specs, &profile, &intervals)?;
    let out_dir = args.get("out").map(PathBuf::from);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir)?;
    }
    let mut msg = String::new();
    for t in &tables {
        msg.push_str(&format!("=== {} ===\n", t.name));
        if t.x_labels.first().map(String::as_str) == Some("routine") {
            msg.push_str(&ute_stats::viewer::named_routine_table(t)?);
        } else {
            msg.push_str(&t.to_tsv());
        }
        if t.x_labels.len() == 2 {
            if let Ok(hm) = ute_stats::viewer::heatmap_ascii(t, 0) {
                msg.push_str(&hm);
            }
        }
        if let Some(dir) = &out_dir {
            std::fs::write(dir.join(format!("{}.tsv", t.name)), t.to_tsv())?;
            if t.x_labels.len() == 2 {
                if let Ok(svg) = ute_stats::viewer::heatmap_svg(t, 0, 10) {
                    std::fs::write(dir.join(format!("{}.svg", t.name)), svg)?;
                }
            }
            msg.push_str(&format!("wrote {}/{}.tsv\n", dir.display(), t.name));
        }
        msg.push('\n');
    }
    Ok(msg)
}

/// `ute preview`: render the whole-run preview of a SLOG file, or of a
/// standard-profile interval file (`--ivl`, e.g. a `--self-trace`
/// output) by building an in-memory SLOG from it first.
pub fn cmd_preview(args: &Args) -> Result<String> {
    let slog = match args.get("ivl") {
        Some(ivl) => {
            let bytes = std::fs::read(ivl)?;
            // A zero-length file is a trace that never got written;
            // say so instead of failing on a header short-read.
            if bytes.is_empty() {
                return Ok(format!("empty trace: {ivl} has no data\n"));
            }
            let profile = Profile::standard();
            let reader = IntervalFileReader::open(&bytes, &profile)?;
            let intervals: Result<Vec<_>> = reader.intervals().collect();
            let intervals = intervals?;
            // Header-only: structurally valid but nothing to preview.
            if intervals.is_empty() {
                return Ok(format!("empty trace: {ivl} contains no intervals\n"));
            }
            ute_slog::builder::SlogBuilder::new(&profile, BuildOptions::default()).build(
                &intervals,
                &reader.threads,
                &reader.markers,
            )?
        }
        None => SlogFile::read_from(Path::new(args.require("slog")?))?,
    };
    let mut msg = ute_view::preview::render_ascii(&slog.preview, 8);
    let ranges = ute_view::preview::interesting_ranges(&slog.preview, 0.25);
    msg.push_str("interesting ranges:");
    for (a, b) in ranges {
        msg.push_str(&format!(" [{a:.3}s..{b:.3}s]"));
    }
    msg.push('\n');
    if let Some(svg_path) = args.get("svg") {
        std::fs::write(
            svg_path,
            ute_view::preview::render_svg(&slog.preview, 600, 120),
        )?;
        msg.push_str(&format!("wrote {svg_path}\n"));
    }
    Ok(msg)
}

/// `ute view`: render a time-space diagram of a SLOG file.
pub fn cmd_view(args: &Args) -> Result<String> {
    let slog = SlogFile::read_from(Path::new(args.require("slog")?))?;
    let kind = match args.get("kind").unwrap_or("thread") {
        "thread" => ViewKind::ThreadActivity,
        "cpu" => ViewKind::ProcessorActivity,
        "threadcpu" => ViewKind::ThreadProcessor,
        "cputhread" => ViewKind::ProcessorThread,
        "type" => ViewKind::TypeActivity,
        other => {
            return Err(UteError::Invalid(format!(
                "unknown view kind `{other}` (thread|cpu|threadcpu|cputhread|type)"
            )))
        }
    };
    let window = match args.get("window") {
        None => None,
        Some(w) => {
            let (a, b) = w
                .split_once(',')
                .ok_or_else(|| UteError::Invalid("--window wants `start,end` seconds".into()))?;
            let a: f64 = a
                .parse()
                .map_err(|_| UteError::Invalid("bad window start".into()))?;
            let b: f64 = b
                .parse()
                .map_err(|_| UteError::Invalid("bad window end".into()))?;
            Some(((a * 1e9) as u64, (b * 1e9) as u64))
        }
    };
    let cfg = ViewConfig {
        kind,
        window,
        connected: args.has("connected"),
        hide_running: args.has("hide-running"),
        cpus_per_node: args
            .get("cpus")
            .map(|c| c.parse().unwrap_or(0))
            .filter(|&c| c > 0),
        ..ViewConfig::default()
    };
    let view = match args.get("frame-at") {
        Some(t) => {
            let secs: f64 = t
                .parse()
                .map_err(|_| UteError::Invalid("--frame-at wants seconds".into()))?;
            ute_view::model::frame_view(&slog, (secs * 1e9) as u64, &cfg)?
        }
        None => build_view(&slog, &cfg)?,
    };
    let mut msg = ute_view::ascii::render(&view, args.num("width", 100usize)?);
    if let Some(svg_path) = args.get("svg") {
        std::fs::write(
            svg_path,
            ute_view::svg::render(&view, &ute_view::svg::SvgOptions::default()),
        )?;
        msg.push_str(&format!("wrote {svg_path}\n"));
    }
    Ok(msg)
}

/// `ute clockfit`: print per-node clock fits from per-node interval files.
pub fn cmd_clockfit(args: &Args) -> Result<String> {
    let dir = PathBuf::from(args.require("in")?);
    let profile = Profile::read_from(&dir.join("profile.ute"))?;
    let (files, _lost) = load_interval_files(&dir, args.salvage())?;
    let estimator = estimator_by_name(args.get("estimator").unwrap_or("rms"))?;
    let mut msg = String::new();
    for bytes in &files {
        let fit = (|| {
            let reader = IntervalFileReader::open(bytes, &profile)?;
            ute_merge::clockfit::fit_node(&reader, &profile, estimator, !args.has("no-filter"))
        })();
        let nf = match fit {
            Ok(nf) => nf,
            Err(e) if args.salvage() => {
                msg.push_str(&format!("node ?: unfittable ({e})\n"));
                continue;
            }
            Err(e) => return Err(e),
        };
        let r = nf.fit.ratio();
        msg.push_str(&format!(
            "node {}: ratio {:.9} (drift {:+.3} ppm), {} samples\n",
            nf.node,
            r,
            (1.0 / r - 1.0) * 1e6,
            nf.samples_used,
        ));
    }
    Ok(msg)
}

/// `ute corrupt`: deterministically corrupt an existing trace
/// directory's raw and interval files for regression corpora. `--seed N`
/// derives a byte-level plan (always including a truncation, so
/// `--strict` re-runs are guaranteed to fail); `--plan SPEC` applies an
/// explicit plan. `profile.ute` and `threads.utt` are never touched.
pub fn cmd_corrupt(args: &Args) -> Result<String> {
    let dir = PathBuf::from(args.require("in")?);
    let raw_nodes = scan_node_files(&dir, "trace", "raw")?;
    let ivl_nodes = scan_node_files(&dir, "trace", "ivl")?;
    if raw_nodes.is_empty() && ivl_nodes.is_empty() {
        return Err(UteError::NotFound(format!(
            "no trace.N.raw or trace.N.ivl files in {}",
            dir.display()
        )));
    }
    let nodes = raw_nodes.len().max(ivl_nodes.len()) as u16;
    let plan = match args.get("plan") {
        Some(spec) => FaultPlan::parse(spec)?,
        None => FaultPlan::byte_level_from_seed(args.num("seed", 0u64)?, nodes),
    };
    let mut msg = format!("corrupting with plan [{plan}]\n");
    let mut apply = |node: u16, path: &Path, protect: usize| -> Result<()> {
        if !path.exists() || plan.for_node(node).next().is_none() {
            return Ok(());
        }
        let data = std::fs::read(path)?;
        match plan.apply_to_file(node, data, protect) {
            Some(bytes) => {
                std::fs::write(path, bytes)?;
                msg.push_str(&format!("  mutated {}\n", path.display()));
            }
            None => {
                std::fs::remove_file(path)?;
                msg.push_str(&format!("  removed {}\n", path.display()));
            }
        }
        Ok(())
    };
    for &node in &raw_nodes {
        apply(
            node,
            &dir.join(RawTraceFile::file_name("trace", NodeId(node))),
            HEADER_LEN,
        )?;
    }
    for &node in &ivl_nodes {
        // Protect only the 8-byte magic: a mangled interval-file header
        // is exactly the kind of damage salvage must survive.
        apply(node, &dir.join(format!("trace.{node}.ivl")), 8)?;
    }
    Ok(msg)
}

/// `ute pipeline`: trace → convert → merge → slogmerge → stats in one go.
/// `--jobs` (and `--strict`) are forwarded to every stage; fault flags
/// apply to the trace stage.
///
/// Every stage runs under the crash-safe publish protocol of
/// `ute-store`: outputs are written to fsync'd temps, committed to the
/// write-ahead journal (`journal.utj`) with content hashes, and only
/// then renamed into place. A killed run is finished by `ute resume`;
/// `--disk-budget BYTES` stops gracefully (journaled, resumable) before
/// a stage would exceed the budget.
pub fn cmd_pipeline(args: &Args) -> Result<String> {
    stages::cmd_pipeline(args)
}

/// `ute resume`: see [`stages::cmd_resume`].
pub fn cmd_resume(args: &Args) -> Result<String> {
    stages::cmd_resume(args)
}

/// `ute chaos`: see [`stages::cmd_chaos`].
pub fn cmd_chaos(args: &Args) -> Result<String> {
    stages::cmd_chaos(args)
}

/// The convert → merge → slogmerge → stats chain over a traced
/// directory, shared by `ute pipeline` and `ute scenario`.
fn ingest_stages(out: &str, jobs: usize, strict: bool) -> Result<String> {
    let sub = |pairs: Vec<(&str, String)>| -> Args {
        let mut a = Args::default();
        for (k, v) in pairs {
            a.map.insert(k.to_string(), v);
        }
        a.map.insert("jobs".to_string(), jobs.to_string());
        if strict {
            a.flags.push("strict".to_string());
        }
        a
    };
    let mut msg = String::new();
    msg.push_str(&cmd_convert(&sub(vec![("in", out.to_string())]))?);
    msg.push_str(&cmd_merge(&sub(vec![
        ("in", out.to_string()),
        ("out", format!("{out}/merged.ivl")),
    ]))?);
    msg.push_str(&cmd_slogmerge(&sub(vec![
        ("in", out.to_string()),
        ("out", format!("{out}/run.slog")),
    ]))?);
    msg.push_str(&cmd_stats(&sub(vec![(
        "merged",
        format!("{out}/merged.ivl"),
    )]))?);
    Ok(msg)
}

/// `ute scenario`: expand a seeded random workload and run it through
/// the full pipeline, or print its spec as JSON.
///
/// The seed fully determines the scenario: `--seed N` twice produces
/// byte-identical raw traces (a tested guarantee), so a seed plus any
/// explicit knob overrides is a complete, shareable reproduction of a
/// trace corpus. `--describe` prints the expanded spec as JSON instead
/// of running; a pipeline run also writes the spec to
/// `OUT/scenario.json` for provenance.
///
/// Knob overrides (all optional; unset knobs keep their sampled value):
/// `--nodes K --cpus C --tasks-per-node T --threads W` reshape the
/// topology; `--pattern P` forces every phase's communication structure
/// (`nn|ring|tree|hub|alltoall|service`); `--rounds N` fixes phase
/// iteration counts; `--straggler R:F` slows rank R by factor F (and
/// guarantees the `Collect` ground-truth phase); `--skew X` multiplies
/// upper-half-rank message sizes; `--burst N` sets the bursty-phase
/// volley length; `--depth/--width/--fanout` shape the service graph.
pub fn cmd_scenario(args: &Args) -> Result<String> {
    let seed: u64 = args
        .require("seed")?
        .parse()
        .map_err(|_| UteError::Invalid("--seed: wants an unsigned integer".into()))?;
    let mut spec = ute_scenario::ScenarioSpec::from_seed(seed);
    if let Some(n) = args.get("nodes") {
        spec.topology.nodes = n
            .parse()
            .map_err(|_| UteError::Invalid(format!("--nodes: bad value `{n}`")))?;
    }
    if let Some(c) = args.get("cpus") {
        spec.topology.cpus_per_node = c
            .parse()
            .map_err(|_| UteError::Invalid(format!("--cpus: bad value `{c}`")))?;
    }
    if let Some(t) = args.get("tasks-per-node") {
        spec.topology.tasks_per_node = t
            .parse()
            .map_err(|_| UteError::Invalid(format!("--tasks-per-node: bad value `{t}`")))?;
    }
    if let Some(t) = args.get("threads") {
        spec.topology.threads_per_task = t
            .parse()
            .map_err(|_| UteError::Invalid(format!("--threads: bad value `{t}`")))?;
    }
    if let Some(p) = args.get("pattern") {
        let pattern = ute_scenario::PatternKind::parse(p).ok_or_else(|| {
            UteError::Invalid(format!(
                "--pattern: unknown `{p}` (nn|ring|tree|hub|alltoall|service)"
            ))
        })?;
        spec.force_pattern(pattern);
    }
    if let Some(r) = args.get("rounds") {
        let rounds: u32 = r
            .parse()
            .map_err(|_| UteError::Invalid(format!("--rounds: bad value `{r}`")))?;
        for p in &mut spec.phases {
            p.rounds = rounds.max(1);
        }
    }
    spec.chain_depth = args.num("depth", spec.chain_depth)?;
    spec.chain_width = args.num("width", spec.chain_width)?;
    spec.fanout = args.num("fanout", spec.fanout)?;
    spec.imbalance.size_skew = args.num("skew", spec.imbalance.size_skew)?;
    spec.imbalance.burst_len = args.num("burst", spec.imbalance.burst_len)?;
    if let Some(s) = args.get("straggler") {
        let (rank, factor) = s
            .split_once(':')
            .ok_or_else(|| UteError::Invalid("--straggler wants RANK:FACTOR".into()))?;
        let rank: u32 = rank
            .parse()
            .map_err(|_| UteError::Invalid("--straggler: bad rank".into()))?;
        let factor: u64 = factor
            .parse()
            .map_err(|_| UteError::Invalid("--straggler: bad factor".into()))?;
        spec = spec.with_straggler(rank, factor);
    }
    spec.validate()?;
    if args.has("describe") {
        return Ok(format!("{}\n", spec.to_json()));
    }
    let out = args.require("out")?;
    let w = scenario_workload(&spec)?;
    let plan = args.fault_plan(w.config.nodes)?;
    let out_dir = PathBuf::from(out);
    std::fs::create_dir_all(&out_dir)?;
    // Provenance first: the spec that produced everything else in the
    // directory, byte-stable for the CI determinism comparisons.
    std::fs::write(
        out_dir.join("scenario.json"),
        format!("{}\n", spec.to_json()),
    )?;
    let mut msg = format!(
        "scenario seed {seed}: {} nodes x {} task(s) x {} thread(s), {} phase(s)\n",
        spec.topology.nodes,
        spec.topology.tasks_per_node,
        spec.topology.threads_per_task,
        spec.phases.len()
    );
    msg.push_str(&run_and_write_trace(
        format!("scenario seed {seed}"),
        w,
        plan,
        &out_dir,
    )?);
    msg.push_str(&ingest_stages(out, args.jobs()?, args.has("strict"))?);
    Ok(msg)
}

/// Counters that exist on every run, registered up front so a *clean*
/// run's report still carries them (as zeros). Without this, the keys
/// only appear once the first salvage/drop event bumps them — and a
/// `--stable` report could not be byte-compared between a fault-matrix
/// job and its clean baseline, or asserted on ("this never happened"
/// would be indistinguishable from "this was never measured").
const BASELINE_COUNTERS: &[&str] = &[
    "salvage/nodes_degraded",
    "salvage/records_skipped",
    "salvage/bytes_skipped",
    "salvage/resyncs",
    "salvage/intervals_truncated",
    "obs/spans_dropped",
    "obs/flows_dropped",
    "analyze/rows",
    "analyze/frames_read",
    "analyze/frames_skipped",
    "analyze/findings",
    "analyze/msgs_matched",
    "store/journal_records",
    "store/journal_replayed",
    "store/stages_run",
    "store/stages_skipped",
    "store/artifacts_published",
    "store/artifacts_verified",
    "store/temps_gc",
    "chaos/kills",
    "chaos/resumes",
    "profile/cpu_spans",
    "profile/samples",
    "profile/stacks_dropped",
    "profile/track_evicted",
];

/// `ute report`: run the full pipeline with metrics from zero and emit
/// every counter, gauge, and histogram as machine-readable JSON,
/// including p50/p95/p99 estimates per histogram and — when
/// `--metrics-interval` is active — the sampler's time-series block.
/// `--stable` drops wall-clock and `--jobs`-dependent metrics (and the
/// percentile/time-series extras) so the output is byte-comparable
/// across runs and thread counts (the form the CI determinism job
/// diffs); deterministic `salvage/*` and `obs/*` totals are kept and
/// always present.
pub fn cmd_report(args: &Args) -> Result<String> {
    ute_obs::reset();
    for name in BASELINE_COUNTERS {
        ute_obs::counter(name);
    }
    cmd_pipeline(args)?;
    // Run the diagnostics over the pipeline's merged output before the
    // snapshot, so the analyze stage's own counters land in the report
    // and the JSON always carries a diagnostics summary block. Findings
    // are a pure function of merged.ivl, so this stays byte-stable
    // across `--jobs` (the determinism CI job diffs it).
    let diag_summary = {
        let dir = PathBuf::from(args.require("out")?);
        let profile = Profile::read_from(&dir.join("profile.ute"))?;
        let table = ute_analyze::load_table(
            &dir.join("merged.ivl"),
            &profile,
            &ute_analyze::LoadOptions::default(),
        )?;
        let findings = ute_analyze::run_all(&table, &ute_analyze::DiagOptions::default());
        ute_analyze::summary_json(ute_analyze::DIAGNOSTICS, &findings)
    };
    // Fold any live sampler's ticks into this report (stopping it here,
    // before the snapshot, so the last partial interval is included);
    // the dispatcher's later stop is then a no-op.
    let ticks = ute_obs::sampler::stop();
    // When `--profiler` is active the dispatcher started the continuous
    // profiler before the root span; stop it here so the report's
    // profile block covers the whole pipeline run (the dispatcher's
    // later stop is then a no-op).
    let prof = ute_profile::stop();
    if prof.is_some() {
        ute_obs::set_profiling(false);
    }
    let stable = args.has("stable");
    let snap = ute_obs::snapshot();
    let snap = if stable { snap.stable() } else { snap };
    let opts = ute_obs::ReportOptions {
        percentiles: !stable,
        timeseries: if !stable && !ticks.is_empty() {
            Some(&ticks)
        } else {
            None
        },
    };
    let mut json = snap.render_json(&opts);
    // Fold the diagnostics (and, outside --stable, the profile) block
    // in as the last top-level keys.
    if json.ends_with("\n}\n") {
        json.truncate(json.len() - 3);
        json.push_str(&format!(",\n  \"diagnostics\": {diag_summary}"));
        if !stable {
            match prof {
                Some(data) => {
                    let report = ute_profile::build_report(args.require("workload")?, &data, &snap);
                    let pj = report.to_json();
                    let pj = pj.trim_end().replace('\n', "\n  ");
                    json.push_str(&format!(",\n  \"profile\": {pj}"));
                }
                None => json.push_str(",\n  \"profile\": {\"enabled\": false}"),
            }
        }
        json.push_str("\n}\n");
    }
    json.push('\n');
    Ok(json)
}

/// `ute profile`: run the journaled pipeline under the continuous
/// profiler and emit the ranked bottleneck report. The dispatcher
/// enables the stack sampler and the span-side profiling hooks before
/// the root span opens, so every stage is covered; a sixth journaled
/// `profile` stage then stops the sampler and publishes
/// `profile.folded` (flamegraph-ready folded stacks) and `profile.json`
/// (the full report) through the same atomic store protocol as the
/// pipeline artifacts. `--json` prints the report JSON instead of the
/// text rendering.
pub fn cmd_profile(args: &Args) -> Result<String> {
    ute_obs::reset();
    for name in BASELINE_COUNTERS {
        ute_obs::counter(name);
    }
    let workload = args.require("workload")?.to_string();
    let json_out = std::cell::RefCell::new(String::new());
    let msg = stages::cmd_profile_run(args, || {
        let data = ute_profile::stop().ok_or_else(|| {
            UteError::Invalid(
                "profile: sampler is not running (dispatcher did not start it)".into(),
            )
        })?;
        ute_obs::set_profiling(false);
        let snap = ute_obs::snapshot();
        let report = ute_profile::build_report(&workload, &data, &snap);
        let json = report.to_json();
        json_out.replace(json.clone());
        Ok(stages::StageOutput {
            artifacts: vec![
                (
                    "profile.folded".to_string(),
                    ute_profile::folded_output(&data).into_bytes(),
                ),
                ("profile.json".to_string(), json.into_bytes()),
            ],
            removes: Vec::new(),
            msg: report.render_text(),
        })
    })?;
    if args.has("json") {
        let j = json_out.into_inner();
        if !j.is_empty() {
            return Ok(j);
        }
    }
    Ok(msg)
}

/// `ute check`: run the conformance rule suites (crate `ute-verify`)
/// over trace artifacts. `--in DIR` checks every artifact the pipeline
/// left there (raw files, per-node interval files, `merged.ivl`,
/// `run.slog`); `--ivl/--slog/--raw FILE` checks one file; `--oracles`
/// runs the differential oracles instead (serial vs `--jobs`, fused vs
/// staged, salvage ⊆ strict, clock-adjusted order). Violations are
/// structured findings, never panics; any error-severity finding makes
/// the command fail with the full report in the error text.
pub fn cmd_check(args: &Args) -> Result<String> {
    let ivl_opts = ute_verify::IvlCheckOptions {
        lenient_tail: args.has("lenient-tail"),
    };
    let mut reports: Vec<ute_verify::Report> = Vec::new();
    if args.has("oracles") {
        let _span = ute_obs::Span::enter("check", "oracles".to_string());
        reports.extend(ute_verify::run_all_oracles(args.num("seed", 7u64)?));
    } else if let Some(path) = args.get("ivl") {
        let bytes = std::fs::read(path)?;
        let profile = match args.get("profile") {
            Some(p) => Profile::read_from(Path::new(p))?,
            None => Profile::standard(),
        };
        reports.push(ute_verify::check_interval_bytes(
            path, &bytes, &profile, ivl_opts,
        ));
    } else if let Some(path) = args.get("slog") {
        let bytes = std::fs::read(path)?;
        reports.push(ute_verify::check_slog_bytes(path, &bytes));
    } else if let Some(path) = args.get("raw") {
        let bytes = std::fs::read(path)?;
        reports.push(ute_verify::check_raw_bytes(path, &bytes));
        reports.push(ute_verify::check_salvage_agrees(path, &bytes));
    } else {
        let dir = PathBuf::from(args.require("in")?);
        let profile = Profile::read_from(&dir.join("profile.ute"))?;
        for node in scan_node_files(&dir, "trace", "raw")? {
            let p = dir.join(RawTraceFile::file_name("trace", NodeId(node)));
            let bytes = std::fs::read(&p)?;
            let label = p.display().to_string();
            reports.push(ute_verify::check_raw_bytes(&label, &bytes));
            reports.push(ute_verify::check_salvage_agrees(&label, &bytes));
        }
        for node in scan_node_files(&dir, "trace", "ivl")? {
            let p = dir.join(format!("trace.{node}.ivl"));
            let bytes = std::fs::read(&p)?;
            reports.push(ute_verify::check_interval_bytes(
                &p.display().to_string(),
                &bytes,
                &profile,
                ivl_opts,
            ));
        }
        for name in ["merged.ivl", "run.slog"] {
            let p = dir.join(name);
            if !p.exists() {
                continue;
            }
            let bytes = std::fs::read(&p)?;
            let label = p.display().to_string();
            if name.ends_with(".slog") {
                reports.push(ute_verify::check_slog_bytes(&label, &bytes));
            } else {
                reports.push(ute_verify::check_interval_bytes(
                    &label, &bytes, &profile, ivl_opts,
                ));
            }
        }
        if reports.is_empty() {
            return Err(UteError::NotFound(format!(
                "no checkable artifacts in {}",
                dir.display()
            )));
        }
    }
    let mut msg = String::new();
    for r in &reports {
        msg.push_str(&r.render());
    }
    let errors: usize = reports.iter().map(|r| r.errors()).sum();
    let warnings: usize = reports.iter().map(|r| r.warnings()).sum();
    msg.push_str(&format!(
        "checked {} artifact(s): {errors} error(s), {warnings} warning(s)\n",
        reports.len()
    ));
    if errors > 0 {
        Err(UteError::Invalid(msg))
    } else {
        Ok(msg)
    }
}

/// `ute fuzz`: run the structure-aware decoder fuzzer — seeded
/// mutations of valid raw/interval/SLOG corpora, every decoder driven
/// over each mutant. Deterministic in `--seed`; fails if any decoder
/// panics (mutants must be *rejected*, not crashed on).
pub fn cmd_fuzz(args: &Args) -> Result<String> {
    let opts = ute_verify::FuzzOptions {
        seed: args.num("seed", 1u64)?,
        iters: args.num("iters", 256u64)?,
        quiet: true,
    };
    let stats = ute_verify::run_fuzz(&opts);
    let msg = format!("fuzz seed {}: {}\n", opts.seed, stats.render());
    if stats.passed() {
        Ok(msg)
    } else {
        Err(UteError::Invalid(msg))
    }
}

/// `ute analyze`: run the programmable diagnostics layer over a trace
/// directory's `merged.ivl` (or over an interval file given directly via
/// `--in FILE`). `--diag NAME` runs one diagnostic, `--all` (the
/// default) runs every one; `--window T0:T1` (seconds) and
/// `--nodes A..B` restrict what is even *loaded* — the loader walks the
/// frame directory and skips frames outside the window without decoding
/// them. `--json` emits the structured findings report instead of text.
pub fn cmd_analyze(args: &Args) -> Result<String> {
    let input = PathBuf::from(args.require("in")?);
    let (merged, default_profile) = if input.is_dir() {
        (input.join("merged.ivl"), input.join("profile.ute"))
    } else {
        let dir = input.parent().unwrap_or(Path::new(".")).to_path_buf();
        (input.clone(), dir.join("profile.ute"))
    };
    if !merged.exists() {
        return Err(UteError::NotFound(format!(
            "{} (run `ute pipeline` or `ute merge` first)",
            merged.display()
        )));
    }
    let profile = match args.get("profile") {
        Some(p) => Profile::read_from(Path::new(p))?,
        None if default_profile.exists() => Profile::read_from(&default_profile)?,
        None => Profile::standard(),
    };
    let window = match args.get("window") {
        None => None,
        Some(w) => {
            let (a, b) = w
                .split_once(':')
                .ok_or_else(|| UteError::Invalid("--window wants `T0:T1` seconds".into()))?;
            let a: f64 = a
                .parse()
                .map_err(|_| UteError::Invalid("bad window start".into()))?;
            let b: f64 = b
                .parse()
                .map_err(|_| UteError::Invalid("bad window end".into()))?;
            Some(((a * 1e9) as u64, (b * 1e9) as u64))
        }
    };
    let nodes = match args.get("nodes") {
        None => None,
        Some(n) => {
            let (a, b) = n
                .split_once("..")
                .ok_or_else(|| UteError::Invalid("--nodes wants `A..B` inclusive".into()))?;
            let a: u16 = a
                .parse()
                .map_err(|_| UteError::Invalid("bad node range start".into()))?;
            let b: u16 = b
                .parse()
                .map_err(|_| UteError::Invalid("bad node range end".into()))?;
            Some((a, b))
        }
    };
    let load = ute_analyze::LoadOptions { window, nodes };
    let table = ute_analyze::load_table(&merged, &profile, &load)?;
    let diags: Vec<&str> = match args.get("diag") {
        Some(d) if ute_analyze::DIAGNOSTICS.contains(&d) => vec![d],
        Some(d) => {
            return Err(UteError::Invalid(format!(
                "unknown diagnostic `{d}` (late_sender|imbalance|comm_pattern|critical_path)"
            )))
        }
        None => ute_analyze::DIAGNOSTICS.to_vec(),
    };
    let dopts = ute_analyze::DiagOptions {
        imbalance_threshold: args.num("imbalance-threshold", 1.25f64)?,
        ..ute_analyze::DiagOptions::default()
    };
    let mut findings = Vec::new();
    for d in &diags {
        findings.extend(ute_analyze::run_diagnostic(d, &table, &dopts)?);
    }
    if args.has("json") {
        return Ok(ute_analyze::render_report_json(
            &diags,
            table.len(),
            &findings,
        ));
    }
    let mut msg = format!(
        "analyzed {} rows ({} diagnostic(s)): {} finding(s)\n",
        table.len(),
        diags.len(),
        findings.len()
    );
    for f in &findings {
        msg.push_str(&f.to_text());
        msg.push('\n');
    }
    Ok(msg)
}

/// Dispatches one invocation. The `--metrics`, `--metrics-interval MS`,
/// and `--self-trace FILE` switches work on every subcommand: the first
/// prints the metrics table (TSV) to stderr when the command finishes,
/// the second runs a background sampler that prints live progress lines
/// while the command executes, and the third writes the run's own spans
/// as a UTE interval file (or Chrome trace JSON with
/// `--self-trace-format chrome`).
pub fn run(argv: &[String]) -> Result<String> {
    let (cmd, rest) = argv
        .split_first()
        .ok_or_else(|| UteError::Invalid(USAGE.trim().to_string()))?;
    // `ute analyze <dir>` / `ute resume <dir>` sugar: a leading bare
    // token becomes --in.
    let rewritten: Vec<String>;
    let rest = if (cmd == "analyze" || cmd == "resume")
        && rest.first().is_some_and(|t| !t.starts_with("--"))
    {
        rewritten = std::iter::once("--in".to_string())
            .chain(rest.iter().cloned())
            .collect();
        &rewritten[..]
    } else {
        rest
    };
    let args = Args::parse(rest)?;
    let self_trace = args.get("self-trace").map(PathBuf::from);
    let self_trace_format = match args.get("self-trace-format") {
        None => selftrace::SelfTraceFormat::default(),
        Some(s) => selftrace::SelfTraceFormat::parse(s).ok_or_else(|| {
            UteError::Invalid(format!(
                "--self-trace-format must be `ivl` or `chrome`, got `{s}`"
            ))
        })?,
    };
    if let Some(limit) = args.get("self-trace-limit") {
        let limit: usize = limit
            .parse()
            .map_err(|_| UteError::Invalid(format!("bad --self-trace-limit `{limit}`")))?;
        ute_obs::set_capture_limit(limit);
    }
    if self_trace.is_some() {
        ute_obs::span::set_capture(true);
        ute_obs::span::drain_spans();
        ute_obs::span::drain_flows();
    }
    if let Some(ms) = args.get("metrics-interval") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| UteError::Invalid(format!("bad --metrics-interval `{ms}`")))?;
        ute_obs::sampler::start(std::time::Duration::from_millis(ms), true);
    }
    // `ute profile` and the `--profiler` switch turn on the continuous
    // profiler — span-side hooks plus the stack sampler — before the
    // root span opens, so the whole command is covered.
    if cmd == "profile" || args.has("profiler") {
        let us: u64 = args.num("interval-us", ute_profile::DEFAULT_INTERVAL_US)?;
        if us == 0 {
            return Err(UteError::Invalid(
                "--interval-us: must be at least 1".into(),
            ));
        }
        ute_obs::set_profiling(true);
        ute_profile::start(std::time::Duration::from_micros(us));
    }
    let result = {
        // Root of the run's span tree: every stage span opened on this
        // thread (and every worker adopting it across a spawn) nests
        // under one `cli/<command>` interval.
        let _root = ute_obs::Span::enter("cli", cmd.to_string());
        match cmd.as_str() {
            "trace" => cmd_trace(&args),
            "convert" => cmd_convert(&args),
            "merge" => cmd_merge(&args),
            "slogmerge" => cmd_slogmerge(&args),
            "stats" => cmd_stats(&args),
            "preview" => cmd_preview(&args),
            "view" => cmd_view(&args),
            "clockfit" => cmd_clockfit(&args),
            "corrupt" => cmd_corrupt(&args),
            "pipeline" => cmd_pipeline(&args),
            "resume" => cmd_resume(&args),
            "chaos" => cmd_chaos(&args),
            "scenario" => cmd_scenario(&args),
            "report" => cmd_report(&args),
            "profile" => cmd_profile(&args),
            "analyze" => cmd_analyze(&args),
            "check" => cmd_check(&args),
            "fuzz" => cmd_fuzz(&args),
            "help" | "--help" => Ok(USAGE.to_string()),
            other => Err(UteError::Invalid(format!(
                "unknown command `{other}`\n{USAGE}"
            ))),
        }
    };
    // No-op unless --metrics-interval started it and the command did not
    // already fold the ticks into its own output (`report` does).
    ute_obs::sampler::stop();
    // `--profiler` on a command that does not fold the profile into its
    // own output (`profile` and `report` do, and already stopped it):
    // stop the sampler here with a compact summary to stderr.
    if let Some(data) = ute_profile::stop() {
        ute_obs::set_profiling(false);
        eprintln!(
            "ute: profiler: {} tick(s), {} stack sample(s), {} distinct stack(s)",
            data.ticks,
            data.leaf_samples,
            data.folded.len()
        );
    }
    let mut msg = result?;
    if let Some(path) = self_trace {
        ute_obs::span::set_capture(false);
        let spans = ute_obs::span::drain_spans();
        let flows = ute_obs::span::drain_flows();
        let tracks = selftrace::profiler_tracks(&ute_profile::take_track());
        selftrace::write_self_trace(&spans, &flows, &tracks, &path, self_trace_format)?;
        msg.push_str(&format!(
            "wrote self-trace {} ({} spans)\n",
            path.display(),
            spans.len()
        ));
    }
    if args.has("metrics") {
        eprint!("{}", ute_obs::snapshot().to_tsv());
    }
    Ok(msg)
}

/// Usage text.
pub const USAGE: &str = "\
ute — Unified Trace Environment (SC 2000 reproduction)

commands:
  trace     --workload NAME --out DIR [--iterations N]
            [--fault-seed N | --fault-plan SPEC]
  convert   --in DIR [--jobs N] [--strict]
  merge     --in DIR --out FILE [--estimator rms|rmsall|last|piecewise] [--no-filter]
            [--jobs N] [--strict]
  slogmerge --in DIR --out FILE [--frames N] [--bins N] [--no-arrows] [--jobs N]
            [--strict]
  stats     --merged FILE [--profile FILE] [--program FILE] [--out DIR]
  preview   --slog FILE | --ivl FILE [--svg FILE]
  view      --slog FILE [--kind thread|cpu|threadcpu|cputhread|type]
            [--window a,b] [--frame-at t] [--connected] [--hide-running]
            [--cpus N] [--width N] [--svg FILE]
  clockfit  --in DIR [--estimator ...] [--no-filter]
  corrupt   --in DIR [--seed N | --plan SPEC]
            (deterministically corrupt trace.N.raw/.ivl for regression
             corpora; profile.ute and threads.utt are never touched)
  pipeline  --workload NAME --out DIR [--iterations N] [--jobs N] [--strict]
            [--fault-seed N | --fault-plan SPEC] [--disk-budget BYTES[k|m|g]]
  resume    DIR | --in DIR [--jobs N] [--disk-budget BYTES]
            (replay DIR/journal.utj from an interrupted `ute pipeline`
             run, verify published artifacts by content hash, complete
             any half-published stage from its committed temps, and
             re-run only the incomplete stages; the finished directory
             is byte-identical to an uninterrupted run at any --jobs)
  chaos     --workload NAME --out DIR [--seed N] [--kills K] [--jobs N]
            [--mode point|timed|soft] [--iterations N] [--strict]
            (process-kill chaos harness: run a clean reference pipeline
             under OUT/clean, then for each kill run a victim pipeline
             that dies at a seeded abort point — `point` SIGKILL-aborts
             a child process at an exact protocol state, `timed` kills
             it on a seeded timer, `soft` aborts in-process — resume
             it, and verify the result is byte-identical to the clean
             run with no stale temp files)
  scenario  --seed N (--out DIR | --describe) [--jobs N] [--strict]
            [--fault-seed N | --fault-plan SPEC]
            [--nodes K] [--cpus C] [--tasks-per-node T] [--threads W]
            [--pattern nn|ring|tree|hub|alltoall|service] [--rounds N]
            [--straggler RANK:FACTOR] [--skew X] [--burst N]
            [--depth D] [--width W] [--fanout F]
            (expand a seeded random workload — topology, phase structure,
             communication patterns, injected imbalance — and run it
             through the full pipeline; the seed fully determines the
             trace bytes. --describe prints the expanded spec as JSON;
             a run writes it to OUT/scenario.json. Seeded specs are also
             usable anywhere a workload name is: --workload scenario:N)
  report    --workload NAME --out DIR [--iterations N] [--jobs N] [--stable]
            (metrics as JSON with p50/p95/p99 per histogram and, when
             --metrics-interval is active, a sampler time-series block;
             --stable drops wall-clock and worker-count metrics — and the
             percentile/time-series extras — so output is byte-comparable
             across runs and --jobs; salvage/* and obs/* totals are kept)
  profile   --workload NAME --out DIR [--interval-us N] [--json] [--jobs N]
            [--iterations N] [--strict] [--fault-seed N | --fault-plan SPEC]
            (run the journaled pipeline under the continuous profiler:
             a wall-clock stack sampler snapshots every worker's span
             stack, span close records per-stage CPU time, and the
             bounded channels count blocked sends/receives; prints a
             ranked bottleneck report — self-time %, wall-vs-CPU
             utilization, backpressure stalls — and publishes
             OUT/profile.folded (flamegraph-ready folded stacks) and
             OUT/profile.json as a sixth journaled stage. --json prints
             the report JSON instead of the text table)
  analyze   DIR | --in DIR|FILE [--diag late_sender|imbalance|comm_pattern
            |critical_path | --all] [--window T0:T1] [--nodes A..B] [--json]
            [--imbalance-threshold X] [--profile FILE]
            (programmable diagnostics over DIR/merged.ivl: late-sender
             wait attribution, per-phase load imbalance, communication-
             pattern classification, critical-path extraction; --window/
             --nodes load only the matching frames through the frame
             directory; --json emits structured findings)
  check     --in DIR | --ivl FILE [--profile FILE] | --slog FILE
            | --raw FILE | --oracles [--seed N]   [--lenient-tail]
            (conformance rule suites over trace artifacts, or the
             differential oracles; violations are structured findings
             and any error-severity finding fails the command)
  fuzz      [--seed N] [--iters M]
            (structure-aware decoder fuzzing: seeded mutations of valid
             corpora; fails if any decoder panics instead of rejecting)

fault tolerance:
  Ingestion commands salvage by default: corrupt records are skipped
  (the decoder resynchronizes on the next valid hookword), truncated
  streams close their open states as synthetic intervals, and missing
  or unreadable nodes degrade with a warning and a Gap pseudo-record
  instead of aborting. Salvage events are counted in the salvage/*
  metrics (see --metrics / `ute report`).
  --strict             restore fail-fast: any corrupt, truncated, or
                       missing input is a hard error
  --fault-seed N       (trace/pipeline) inject a deterministic seeded
                       fault plan while writing raw traces
  --fault-plan SPEC    explicit plan, comma-separated NODE:KIND — e.g.
                       0:truncate@500,1:bitflip@123.5,2:missing,
                       3:overrun@64+40,4:dropflush@1,5:clockjump@100+9999

crash safety:
  `ute pipeline` writes through a write-ahead run journal
  (OUT/journal.utj) and an atomic artifact store: every stage's outputs
  are written to fsync'd NAME.tmp.<pid> temps, committed to the journal
  with content hashes, and only then renamed into place. Kill the
  process anywhere and `ute resume OUT` finishes the run — published
  stages are verified and skipped, committed stages complete from their
  temps, stale temps are swept. `--disk-budget` stops a run gracefully
  (journaled, resumable) before a stage would exceed the budget, as
  does a full disk. `ute chaos` proves all of this under seeded kills.

parallelism:
  --jobs N             worker count for convert and merge (default: all
                       cores; 1 = serial). Output is byte-identical for
                       every value — CI enforces it.

observability (any command):
  --metrics            print the per-stage metrics table (TSV) to stderr
  --metrics-interval MS
                       sample counters every MS milliseconds on a
                       background thread, printing live progress lines
                       (records/s, bytes/s, salvage events) to stderr;
                       `ute report` embeds the time series in its JSON
  --self-trace FILE    write this run's own spans (hierarchical: parent
                       ids, per-thread lanes, cross-thread flow links)
  --self-trace-format ivl|chrome
                       self-trace sink format (default ivl). `ivl` is a
                       UTE interval file (view with `ute preview --ivl`);
                       `chrome` is Chrome trace JSON for ui.perfetto.dev
  --self-trace-limit N capture at most N spans (default 1048576); spans
                       beyond the cap are dropped and counted in
                       obs/spans_dropped
  --profiler           run any command under the continuous profiler:
                       a summary goes to stderr, span CPU time lands in
                       the Chrome self-trace args, the backpressure
                       track becomes ph:\"C\" counter lanes, and
                       `ute report` grows a \"profile\" block. Build
                       with `--features profile-alloc` to also
                       attribute allocations to the active stage
  --interval-us N      profiler sampling interval in µs (default 500)
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(pairs: &[(&str, &str)], flags: &[&str]) -> Args {
        let mut a = Args::default();
        for (k, v) in pairs {
            a.map.insert(k.to_string(), v.to_string());
        }
        a.flags = flags.iter().map(|s| s.to_string()).collect();
        a
    }

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ute_cli_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn args_parse() {
        let argv: Vec<String> = ["--in", "x", "--no-filter", "--frames", "8"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let a = Args::parse(&argv).unwrap();
        assert_eq!(a.get("in"), Some("x"));
        assert!(a.has("no-filter"));
        assert_eq!(a.num("frames", 0usize).unwrap(), 8);
        assert_eq!(a.num("bins", 99u32).unwrap(), 99);
        assert!(a.require("out").is_err());
        assert!(Args::parse(&["oops".to_string()]).is_err());
    }

    fn argv(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn valued_key_missing_its_value_is_an_error() {
        // The ambiguous case: `--in` swallowed by the next switch. The
        // old parser silently demoted `--in` to a bare flag; now it is
        // a hard error naming the key.
        let e = Args::parse(&argv(&["--in", "--no-filter"])).unwrap_err();
        assert!(e.to_string().contains("missing value for --in"), "{e}");
        // Same at the end of the argument list.
        let e = Args::parse(&argv(&["--workload", "sppm", "--out"])).unwrap_err();
        assert!(e.to_string().contains("missing value for --out"), "{e}");
        // Two valued keys back to back.
        let e = Args::parse(&argv(&["--in", "--out", "x"])).unwrap_err();
        assert!(e.to_string().contains("missing value for --in"), "{e}");
    }

    #[test]
    fn switches_and_values_interleave() {
        let a = Args::parse(&argv(&[
            "--metrics",
            "--in",
            "dir",
            "--no-arrows",
            "--self-trace",
            "self.ivl",
        ]))
        .unwrap();
        assert!(a.has("metrics"));
        assert!(a.has("no-arrows"));
        assert_eq!(a.get("in"), Some("dir"));
        assert_eq!(a.get("self-trace"), Some("self.ivl"));
    }

    #[test]
    fn full_pipeline_through_cli() {
        let dir = tmpdir("pipeline");
        let out = dir.to_str().unwrap();
        let msg = cmd_pipeline(&args(&[("workload", "pingpong"), ("out", out)], &[])).unwrap();
        assert!(msg.contains("traced pingpong"));
        assert!(msg.contains("merged 2 files"));
        assert!(msg.contains("slogmerge:"));
        assert!(msg.contains("mpi_by_routine"));
        // Artifacts exist.
        for f in [
            "trace.0.raw",
            "trace.0.ivl",
            "merged.ivl",
            "run.slog",
            "profile.ute",
            "threads.utt",
        ] {
            assert!(dir.join(f).exists(), "missing {f}");
        }
        // Views render from the produced SLOG.
        let v = cmd_view(&args(
            &[("slog", &format!("{out}/run.slog")), ("kind", "thread")],
            &["hide-running"],
        ))
        .unwrap();
        assert!(v.contains("legend:"), "{v}");
        let p = cmd_preview(&args(&[("slog", &format!("{out}/run.slog"))], &[])).unwrap();
        assert!(p.contains("interesting ranges:"));
        let c = cmd_clockfit(&args(&[("in", out)], &[])).unwrap();
        assert!(c.contains("node 0"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jobs_values_produce_identical_artifacts() {
        // The determinism guarantee at the CLI surface: the same seeded
        // workload merged with different worker counts produces the same
        // merged.ivl and run.slog bytes.
        let dir = tmpdir("jobs");
        let out = dir.to_str().unwrap();
        cmd_pipeline(&args(
            &[("workload", "sendrecv"), ("out", out), ("jobs", "1")],
            &[],
        ))
        .unwrap();
        let merged_serial = std::fs::read(dir.join("merged.ivl")).unwrap();
        let slog_serial = std::fs::read(dir.join("run.slog")).unwrap();
        for jobs in ["2", "8"] {
            cmd_pipeline(&args(
                &[("workload", "sendrecv"), ("out", out), ("jobs", jobs)],
                &[],
            ))
            .unwrap();
            assert_eq!(
                merged_serial,
                std::fs::read(dir.join("merged.ivl")).unwrap(),
                "merged.ivl differs at --jobs {jobs}"
            );
            assert_eq!(
                slog_serial,
                std::fs::read(dir.join("run.slog")).unwrap(),
                "run.slog differs at --jobs {jobs}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jobs_zero_is_rejected() {
        let e = cmd_convert(&args(&[("in", "/nonexistent"), ("jobs", "0")], &[])).unwrap_err();
        // --jobs is validated before any filesystem access.
        assert!(e.to_string().contains("--jobs"), "{e}");
    }

    #[test]
    fn unknown_command_and_workload() {
        assert!(run(&["bogus".to_string()]).is_err());
        let e = cmd_trace(&args(&[("workload", "bogus"), ("out", "/tmp/x")], &[])).unwrap_err();
        assert!(e.to_string().contains("unknown workload"));
    }

    #[test]
    fn help_prints_usage() {
        let msg = run(&["help".to_string()]).unwrap();
        assert!(msg.contains("slogmerge"));
    }

    #[test]
    fn custom_stats_program_via_cli() {
        let dir = tmpdir("stats");
        let out = dir.to_str().unwrap();
        cmd_pipeline(&args(&[("workload", "allreduce"), ("out", out)], &[])).unwrap();
        let prog = dir.join("prog.uts");
        std::fs::write(
            &prog,
            "table name=by_node x=(\"node\", node) y=(\"time\", dura, sum)",
        )
        .unwrap();
        let msg = cmd_stats(&args(
            &[
                ("merged", &format!("{out}/merged.ivl")),
                ("program", prog.to_str().unwrap()),
            ],
            &[],
        ))
        .unwrap();
        assert!(msg.contains("=== by_node ==="));
        assert!(msg.lines().any(|l| l.starts_with("node\ttime")));
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod extended_cli_tests {
    use super::*;

    fn args(pairs: &[(&str, &str)], flags: &[&str]) -> Args {
        let mut a = Args::default();
        for (k, v) in pairs {
            a.map.insert(k.to_string(), v.to_string());
        }
        a.flags = flags.iter().map(|s| s.to_string()).collect();
        a
    }

    #[test]
    fn frame_at_and_stats_out_dir() {
        let dir = std::env::temp_dir().join(format!("ute_cli_ext_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.to_str().unwrap().to_string();
        cmd_pipeline(&args(&[("workload", "stencil"), ("out", &out)], &[])).unwrap();
        // Frame-at view through the CLI.
        let v = cmd_view(&args(
            &[
                ("slog", &format!("{out}/run.slog")),
                ("frame-at", "0.01"),
                ("kind", "thread"),
            ],
            &["connected", "hide-running"],
        ))
        .unwrap();
        assert!(v.contains("legend:"), "{v}");
        // Stats with an output directory writes TSVs.
        let stats_dir = dir.join("tables");
        let msg = cmd_stats(&args(
            &[
                ("merged", &format!("{out}/merged.ivl")),
                ("out", stats_dir.to_str().unwrap()),
            ],
            &[],
        ))
        .unwrap();
        assert!(msg.contains("wrote"));
        assert!(stats_dir.join("mpi_by_routine.tsv").exists());
        assert!(stats_dir.join("interesting_by_node_bin.svg").exists());
        // Piecewise estimator available through merge.
        let m = cmd_merge(&args(
            &[
                ("in", &out),
                ("out", &format!("{out}/merged_pw.ivl")),
                ("estimator", "piecewise"),
            ],
            &[],
        ))
        .unwrap();
        assert!(m.contains("merged"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod fault_cli_tests {
    use super::*;

    fn args(pairs: &[(&str, &str)], flags: &[&str]) -> Args {
        let mut a = Args::default();
        for (k, v) in pairs {
            a.map.insert(k.to_string(), v.to_string());
        }
        a.flags = flags.iter().map(|s| s.to_string()).collect();
        a
    }

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ute_cli_fault_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    const PLAN: &str = "0:truncate@800,1:bitflip@200.3,2:missing";

    #[test]
    fn fault_pipeline_salvages_and_stays_deterministic() {
        // The issue's acceptance scenario: one truncated, one
        // bit-flipped, one missing node — the pipeline completes, the
        // missing node's raw file does not exist, and the artifacts are
        // byte-identical at every job count.
        let d1 = tmpdir("plan1");
        let msg = cmd_pipeline(&args(
            &[
                ("workload", "stencil"),
                ("out", d1.to_str().unwrap()),
                ("iterations", "6"),
                ("jobs", "1"),
                ("fault-plan", PLAN),
            ],
            &[],
        ))
        .unwrap();
        assert!(msg.contains("injected faults"), "{msg}");
        assert!(!d1.join("trace.2.raw").exists());
        assert!(!d1.join("trace.2.ivl").exists());
        let merged = std::fs::read(d1.join("merged.ivl")).unwrap();
        let slog = std::fs::read(d1.join("run.slog")).unwrap();

        let d8 = tmpdir("plan8");
        cmd_pipeline(&args(
            &[
                ("workload", "stencil"),
                ("out", d8.to_str().unwrap()),
                ("iterations", "6"),
                ("jobs", "8"),
                ("fault-plan", PLAN),
            ],
            &[],
        ))
        .unwrap();
        assert_eq!(
            merged,
            std::fs::read(d8.join("merged.ivl")).unwrap(),
            "merged.ivl differs between --jobs 1 and 8 under faults"
        );
        assert_eq!(
            slog,
            std::fs::read(d8.join("run.slog")).unwrap(),
            "run.slog differs between --jobs 1 and 8 under faults"
        );

        // The same corpus is a hard error under --strict.
        let ds = tmpdir("planstrict");
        let e = cmd_pipeline(&args(
            &[
                ("workload", "stencil"),
                ("out", ds.to_str().unwrap()),
                ("iterations", "6"),
                ("fault-plan", PLAN),
            ],
            &["strict"],
        ))
        .unwrap_err();
        assert!(!e.to_string().is_empty());

        for d in [d1, d8, ds] {
            std::fs::remove_dir_all(&d).ok();
        }
    }

    #[test]
    fn report_counts_degraded_nodes() {
        let dir = tmpdir("report");
        let json = cmd_report(&args(
            &[
                ("workload", "stencil"),
                ("out", dir.to_str().unwrap()),
                ("iterations", "6"),
                ("fault-plan", PLAN),
            ],
            &["stable"],
        ))
        .unwrap();
        // Node 2 is missing; nodes 0 and 1 salvage without degrading.
        // (Other tests share the global registry, so assert >= 1 by
        // excluding only the zero case.)
        assert!(json.contains("\"salvage/nodes_degraded\""), "{json}");
        assert!(!json.contains("\"salvage/nodes_degraded\": 0"), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_respects_metadata_and_gates_strict() {
        let dir = tmpdir("corrupt");
        let out = dir.to_str().unwrap().to_string();
        cmd_trace(&args(
            &[("workload", "stencil"), ("out", &out), ("iterations", "6")],
            &[],
        ))
        .unwrap();
        let profile_before = std::fs::read(dir.join("profile.ute")).unwrap();
        let threads_before = std::fs::read(dir.join("threads.utt")).unwrap();
        let msg = cmd_corrupt(&args(&[("in", &out), ("plan", "0:truncate@123")], &[])).unwrap();
        assert!(msg.contains("mutated"), "{msg}");
        assert_eq!(
            profile_before,
            std::fs::read(dir.join("profile.ute")).unwrap()
        );
        assert_eq!(
            threads_before,
            std::fs::read(dir.join("threads.utt")).unwrap()
        );
        // Strict convert refuses the truncated file; salvage proceeds.
        assert!(cmd_convert(&args(&[("in", &out)], &["strict"])).is_err());
        let msg = cmd_convert(&args(&[("in", &out)], &[])).unwrap();
        assert!(msg.contains("node 0"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seeded_corruption_is_reproducible() {
        // Same workload + same seed ⇒ identical damaged bytes — the
        // property CI's fault matrix relies on.
        let (da, db) = (tmpdir("seed_a"), tmpdir("seed_b"));
        for d in [&da, &db] {
            let out = d.to_str().unwrap();
            cmd_trace(&args(
                &[("workload", "stencil"), ("out", out), ("iterations", "6")],
                &[],
            ))
            .unwrap();
            cmd_corrupt(&args(&[("in", out), ("seed", "42")], &[])).unwrap();
        }
        let mut names: Vec<_> = std::fs::read_dir(&da)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        names.sort();
        assert!(!names.is_empty());
        for name in names {
            let a = std::fs::read(da.join(&name)).unwrap();
            let b = std::fs::read(db.join(&name)).unwrap();
            assert_eq!(a, b, "{name:?} differs between identically seeded runs");
        }
        std::fs::remove_dir_all(&da).ok();
        std::fs::remove_dir_all(&db).ok();
    }

    #[test]
    fn preview_reports_empty_traces_cleanly() {
        use ute_format::file::IntervalFileWriter;
        use ute_format::profile::MASK_PER_NODE;
        use ute_format::thread_table::ThreadTable;

        let dir = tmpdir("preview");
        // Zero-length file: a trace that never got written.
        let empty = dir.join("empty.ivl");
        std::fs::write(&empty, b"").unwrap();
        let msg = cmd_preview(&args(&[("ivl", empty.to_str().unwrap())], &[])).unwrap();
        assert!(msg.contains("empty trace"), "{msg}");
        assert!(msg.contains("has no data"), "{msg}");

        // Header-only file: structurally valid, zero intervals.
        let profile = Profile::standard();
        let w = IntervalFileWriter::new(
            &profile,
            MASK_PER_NODE,
            0,
            &ThreadTable::new(),
            &[],
            FramePolicy::default(),
        );
        let headonly = dir.join("headonly.ivl");
        std::fs::write(&headonly, w.finish()).unwrap();
        let msg = cmd_preview(&args(&[("ivl", headonly.to_str().unwrap())], &[])).unwrap();
        assert!(msg.contains("contains no intervals"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
