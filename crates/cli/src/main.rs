//! The `ute` binary. All logic lives in the library so the test suite can
//! drive it; this shim only handles process plumbing.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match ute_cli::run(&argv) {
        Ok(msg) => print!("{msg}"),
        Err(e) => {
            eprintln!("ute: {e}");
            std::process::exit(1);
        }
    }
}
