//! The self-trace sink: the framework dogfoods its own format.
//!
//! Spans captured by `ute-obs` during a run are re-emitted as UTE
//! interval records — one timeline per pipeline stage, one MARKER
//! interval per span — producing a file the framework's own viewers
//! (`ute preview --ivl`, `ute view`) can open. The file uses the
//! standard profile and node 0, with span start/duration expressed in
//! nanoseconds since the process epoch.

use std::path::Path;

use ute_core::error::Result;
use ute_core::ids::{CpuId, LogicalThreadId, NodeId, Pid, SystemThreadId, TaskId, ThreadType};
use ute_format::file::{FramePolicy, IntervalFileWriter};
use ute_format::profile::{Profile, MASK_PER_NODE};
use ute_format::record::{Interval, IntervalType};
use ute_format::state::StateCode;
use ute_format::thread_table::{ThreadEntry, ThreadTable};
use ute_format::value::Value;
use ute_obs::FinishedSpan;

/// Serializes captured spans into a per-node interval file (standard
/// profile, node 0). Each distinct stage becomes a logical thread;
/// each distinct span label becomes a marker name.
pub fn self_trace_bytes(spans: &[FinishedSpan]) -> Result<Vec<u8>> {
    let profile = Profile::standard();

    // Stage → timeline, in order of first appearance.
    let mut stages: Vec<&'static str> = Vec::new();
    for s in spans {
        if !stages.contains(&s.stage) {
            stages.push(s.stage);
        }
    }
    let mut threads = ThreadTable::new();
    for (i, _) in stages.iter().enumerate() {
        threads.register(ThreadEntry {
            task: TaskId(i as u32),
            pid: Pid(1),
            system_tid: SystemThreadId(i as u64),
            node: NodeId(0),
            logical: LogicalThreadId(i as u16),
            ttype: ThreadType::User,
        })?;
    }

    // Label → marker id, in order of first appearance (ids from 1).
    let mut markers: Vec<(u32, String)> = Vec::new();
    let marker_of = |markers: &mut Vec<(u32, String)>, label: &str| -> u32 {
        if let Some((id, _)) = markers.iter().find(|(_, n)| n == label) {
            *id
        } else {
            let id = markers.len() as u32 + 1;
            markers.push((id, label.to_string()));
            id
        }
    };

    let mut records: Vec<Interval> = Vec::with_capacity(spans.len());
    for s in spans {
        let lane = stages.iter().position(|st| *st == s.stage).unwrap() as u16;
        let marker_id = marker_of(&mut markers, &s.label);
        records.push(
            Interval::basic(
                IntervalType::complete(StateCode::MARKER),
                s.start_ns,
                s.dur_ns,
                CpuId(0),
                NodeId(0),
                LogicalThreadId(lane),
            )
            .try_with_extra(&profile, "markerId", Value::Uint(marker_id as u64))?
            .try_with_extra(&profile, "address", Value::Uint(0))?
            .try_with_extra(&profile, "addressEnd", Value::Uint(0))?,
        );
    }
    // The writer requires ascending end-time order (spans are logged in
    // drop order, which is close to but not exactly end-ordered).
    records.sort_by_key(|iv| iv.end());

    let mut w = IntervalFileWriter::new(
        &profile,
        MASK_PER_NODE,
        0,
        &threads,
        &markers,
        FramePolicy::default(),
    );
    for iv in &records {
        w.push(iv)?;
    }
    Ok(w.finish())
}

/// Writes the self-trace interval file for `spans` to `path`.
pub fn write_self_trace(spans: &[FinishedSpan], path: &Path) -> Result<()> {
    std::fs::write(path, self_trace_bytes(spans)?)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_format::file::IntervalFileReader;

    fn span(stage: &'static str, label: &str, start: u64, dur: u64) -> FinishedSpan {
        FinishedSpan {
            stage,
            label: label.to_string(),
            start_ns: start,
            dur_ns: dur,
        }
    }

    #[test]
    fn spans_round_trip_as_intervals() {
        let spans = vec![
            span("convert", "convert node 0", 10, 100),
            span("convert", "convert node 1", 20, 50),
            span("merge", "merge node 0", 200, 40),
        ];
        let bytes = self_trace_bytes(&spans).unwrap();
        let p = Profile::standard();
        let r = IntervalFileReader::open(&bytes, &p).unwrap();
        assert_eq!(r.threads.len(), 2); // convert + merge lanes
        assert_eq!(r.markers.len(), 3);
        let ivs: Vec<Interval> = r.intervals().map(|x| x.unwrap()).collect();
        assert_eq!(ivs.len(), 3);
        for w in ivs.windows(2) {
            assert!(w[0].end() <= w[1].end());
        }
        // The node-1 convert span kept its timing and marker binding.
        let iv = ivs.iter().find(|iv| iv.start == 20).unwrap();
        assert_eq!(iv.duration, 50);
        let id = iv.extra(&p, "markerId").and_then(|v| v.as_uint()).unwrap();
        let name = &r.markers.iter().find(|(i, _)| *i as u64 == id).unwrap().1;
        assert_eq!(name, "convert node 1");
    }

    #[test]
    fn empty_span_log_still_writes_a_valid_file() {
        let bytes = self_trace_bytes(&[]).unwrap();
        let p = Profile::standard();
        let r = IntervalFileReader::open(&bytes, &p).unwrap();
        assert_eq!(r.intervals().count(), 0);
    }
}
