//! The self-trace sink: the framework dogfoods its own format.
//!
//! Spans captured by `ute-obs` during a run are re-emitted in one of
//! two formats:
//!
//! * **`ivl`** (default) — UTE interval records, one timeline per
//!   `(stage, thread)` pair, one MARKER interval per span, so the
//!   framework's own viewers (`ute preview --ivl`, `ute view`) can open
//!   the file. The span *hierarchy* rides along in the standard
//!   profile's extra fields: `address` carries the span's stable id and
//!   `addressEnd` its parent's id (0 for roots) — the same
//!   nested-or-disjoint laminar families `crates/view/src/nest.rs`
//!   reconstructs for user traces.
//! * **`chrome`** — Chrome Trace Event JSON (`ph:"X"` duration events
//!   with `pid` 0 and `tid` = the observability thread index, plus
//!   `ph:"s"`/`ph:"f"` flow events for cross-thread channel handoffs),
//!   loadable directly in `ui.perfetto.dev` or `chrome://tracing`.
//!
//! Both express span start/duration in nanoseconds since the process
//! epoch (microseconds with fractional precision for Chrome, per the
//! format's convention).

use std::path::Path;

use ute_core::error::Result;
use ute_core::ids::{CpuId, LogicalThreadId, NodeId, Pid, SystemThreadId, TaskId, ThreadType};
use ute_format::file::{FramePolicy, IntervalFileWriter};
use ute_format::profile::{Profile, MASK_PER_NODE};
use ute_format::record::{Interval, IntervalType};
use ute_format::state::StateCode;
use ute_format::thread_table::{ThreadEntry, ThreadTable};
use ute_format::value::Value;
use ute_obs::{FinishedSpan, FlowPoint};

/// Output format for `--self-trace` (`--self-trace-format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelfTraceFormat {
    /// UTE interval file (the default — dogfooding the paper's format).
    #[default]
    Ivl,
    /// Chrome Trace Event JSON for ui.perfetto.dev / chrome://tracing.
    Chrome,
}

impl SelfTraceFormat {
    /// Parses the `--self-trace-format` value.
    pub fn parse(s: &str) -> Option<SelfTraceFormat> {
        match s {
            "ivl" => Some(SelfTraceFormat::Ivl),
            "chrome" => Some(SelfTraceFormat::Chrome),
            _ => None,
        }
    }
}

/// Serializes captured spans into a per-node interval file (standard
/// profile, node 0). Each distinct `(stage, thread)` pair becomes a
/// logical thread — per-thread lanes keep each timeline's intervals
/// laminar (nested or disjoint), which is what lets `nest.rs` recover
/// the hierarchy — and each distinct span label becomes a marker name.
/// The `address`/`addressEnd` extras carry span id and parent id.
pub fn self_trace_bytes(spans: &[FinishedSpan]) -> Result<Vec<u8>> {
    let profile = Profile::standard();

    // (stage, tid) → timeline, in order of first appearance.
    let mut lanes: Vec<(&'static str, u64)> = Vec::new();
    for s in spans {
        if !lanes.contains(&(s.stage, s.tid)) {
            lanes.push((s.stage, s.tid));
        }
    }
    let mut threads = ThreadTable::new();
    for (i, (_, tid)) in lanes.iter().enumerate() {
        threads.register(ThreadEntry {
            task: TaskId(i as u32),
            pid: Pid(1),
            system_tid: SystemThreadId(*tid),
            node: NodeId(0),
            logical: LogicalThreadId(i as u16),
            ttype: ThreadType::User,
        })?;
    }

    // Label → marker id, in order of first appearance (ids from 1).
    let mut markers: Vec<(u32, String)> = Vec::new();
    let marker_of = |markers: &mut Vec<(u32, String)>, label: &str| -> u32 {
        if let Some((id, _)) = markers.iter().find(|(_, n)| n == label) {
            *id
        } else {
            let id = markers.len() as u32 + 1;
            markers.push((id, label.to_string()));
            id
        }
    };

    let mut records: Vec<Interval> = Vec::with_capacity(spans.len());
    for s in spans {
        let lane = lanes
            .iter()
            .position(|&(st, t)| st == s.stage && t == s.tid)
            .unwrap() as u16;
        let marker_id = marker_of(&mut markers, &s.label);
        records.push(
            Interval::basic(
                IntervalType::complete(StateCode::MARKER),
                s.start_ns,
                s.dur_ns,
                CpuId(0),
                NodeId(0),
                LogicalThreadId(lane),
            )
            .try_with_extra(&profile, "markerId", Value::Uint(marker_id as u64))?
            .try_with_extra(&profile, "address", Value::Uint(s.id))?
            .try_with_extra(&profile, "addressEnd", Value::Uint(s.parent))?,
        );
    }
    // The writer requires ascending end-time order (spans are logged in
    // drop order, which is close to but not exactly end-ordered).
    records.sort_by_key(|iv| iv.end());

    let mut w = IntervalFileWriter::new(
        &profile,
        MASK_PER_NODE,
        0,
        &threads,
        &markers,
        FramePolicy::default(),
    );
    for iv in &records {
        w.push(iv)?;
    }
    Ok(w.finish())
}

/// JSON string escaping for event names/categories.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Chrome's `ts` unit is microseconds; keep ns precision as fractions.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

/// A `ph:"C"` counter time series for the Chrome export: one named
/// plot of `(ns-since-epoch, value)` points, rendered as a stacked
/// counter lane under the span timelines (Perfetto draws each one as
/// an area chart). The profiler's backpressure samples — queue depth,
/// blocked-send/recv wait per tick — arrive here.
#[derive(Debug, Clone, Default)]
pub struct CounterTrack {
    /// Series name (the counter lane title).
    pub name: String,
    /// `(at_ns, value)` points, ascending in time.
    pub points: Vec<(u64, f64)>,
}

/// Builds the Chrome counter tracks from the profiler's sampled
/// backpressure state: instantaneous queue depth, plus per-tick deltas
/// (milliseconds waited, sends/recvs newly blocked) of the cumulative
/// counters — deltas make stalls visible as spikes at the tick where
/// they happened rather than an ever-rising line.
pub fn profiler_tracks(samples: &[ute_profile::CounterSample]) -> Vec<CounterTrack> {
    if samples.is_empty() {
        return Vec::new();
    }
    let mut depth = CounterTrack {
        name: "queue depth".to_string(),
        ..CounterTrack::default()
    };
    let mut send_wait = CounterTrack {
        name: "send wait ms".to_string(),
        ..CounterTrack::default()
    };
    let mut recv_wait = CounterTrack {
        name: "recv wait ms".to_string(),
        ..CounterTrack::default()
    };
    let mut blocked = CounterTrack {
        name: "blocked sends".to_string(),
        ..CounterTrack::default()
    };
    let mut prev: Option<&ute_profile::CounterSample> = None;
    for s in samples {
        depth.points.push((s.at_ns, s.queue_depth));
        let (dsend, drecv, dblocked) = match prev {
            Some(p) => (
                s.send_wait_ns.saturating_sub(p.send_wait_ns),
                s.recv_wait_ns.saturating_sub(p.recv_wait_ns),
                s.blocked_sends.saturating_sub(p.blocked_sends),
            ),
            None => (s.send_wait_ns, s.recv_wait_ns, s.blocked_sends),
        };
        send_wait.points.push((s.at_ns, dsend as f64 / 1e6));
        recv_wait.points.push((s.at_ns, drecv as f64 / 1e6));
        blocked.points.push((s.at_ns, dblocked as f64));
        prev = Some(s);
    }
    vec![depth, send_wait, recv_wait, blocked]
}

/// Serializes captured spans and flow points as Chrome Trace Event JSON
/// (the `{"traceEvents": [...]}` object form). Every span becomes a
/// `ph:"X"` complete event with `pid` 0, `tid` = observability thread
/// index, category = stage, and span id / parent id / aborted flag in
/// `args` (plus the span's thread CPU time when profiling measured
/// one). Cross-thread handoffs become `ph:"s"` → `ph:"f"` flow pairs;
/// a flow end binds to the enclosing slice at its timestamp, so both
/// ends land inside the worker/consumer spans that produced them. Only
/// links with **both** ends recorded are emitted. Events are sorted by
/// timestamp (metadata first), as the format recommends.
pub fn chrome_trace_json(spans: &[FinishedSpan], flows: &[FlowPoint]) -> String {
    chrome_trace_json_with_tracks(spans, flows, &[])
}

/// [`chrome_trace_json`] plus `ph:"C"` counter tracks (see
/// [`CounterTrack`]): each point becomes a counter event on `pid` 0,
/// interleaved into the same timestamp-sorted stream.
pub fn chrome_trace_json_with_tracks(
    spans: &[FinishedSpan],
    flows: &[FlowPoint],
    tracks: &[CounterTrack],
) -> String {
    // (sort key ns, rendered event). Metadata sorts before everything.
    let mut events: Vec<(u64, String)> = Vec::new();

    let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
    tids.extend(flows.iter().map(|f| f.tid));
    tids.sort_unstable();
    tids.dedup();
    events.push((
        0,
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"ute self-trace\"}}"
            .to_string(),
    ));
    for &tid in &tids {
        events.push((
            0,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"obs thread {tid}\"}}}}"
            ),
        ));
    }

    for s in spans {
        // CPU time only appears when profiling measured one — keeping
        // the args shape stable for unprofiled runs.
        let cpu = if s.cpu_ns > 0 {
            format!(",\"cpu_ns\":{}", s.cpu_ns)
        } else {
            String::new()
        };
        events.push((
            s.start_ns,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{},\"args\":{{\"span\":{},\"parent\":{},\"aborted\":{}{}}}}}",
                esc(&s.label),
                esc(s.stage),
                us(s.start_ns),
                us(s.dur_ns),
                s.tid,
                s.id,
                s.parent,
                s.aborted,
                cpu,
            ),
        ));
    }

    for t in tracks {
        for &(at_ns, v) in &t.points {
            events.push((
                at_ns,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"profile\",\"ph\":\"C\",\"ts\":{},\
                     \"pid\":0,\"args\":{{\"value\":{:.3}}}}}",
                    esc(&t.name),
                    us(at_ns),
                    v,
                ),
            ));
        }
    }

    // Pair up flow points; emit only complete begin/end pairs.
    for f in flows.iter().filter(|f| f.begin) {
        let Some(end) = flows.iter().find(|e| !e.begin && e.link == f.link) else {
            continue;
        };
        events.push((
            f.at_ns,
            format!(
                "{{\"name\":\"handoff\",\"cat\":\"pipeline\",\"ph\":\"s\",\"id\":{},\
                 \"ts\":{},\"pid\":0,\"tid\":{}}}",
                f.link,
                us(f.at_ns),
                f.tid,
            ),
        ));
        events.push((
            end.at_ns,
            format!(
                "{{\"name\":\"handoff\",\"cat\":\"pipeline\",\"ph\":\"f\",\"bp\":\"e\",\
                 \"id\":{},\"ts\":{},\"pid\":0,\"tid\":{}}}",
                end.link,
                us(end.at_ns),
                end.tid,
            ),
        ));
    }

    events.sort_by_key(|(at, _)| *at);
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, (_, e)) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(e);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Writes the self-trace for `spans`/`flows` to `path` in `format`
/// (flow links and counter tracks only appear in the Chrome form; the
/// ivl form carries the hierarchy in its extra fields instead).
pub fn write_self_trace(
    spans: &[FinishedSpan],
    flows: &[FlowPoint],
    tracks: &[CounterTrack],
    path: &Path,
    format: SelfTraceFormat,
) -> Result<()> {
    match format {
        SelfTraceFormat::Ivl => std::fs::write(path, self_trace_bytes(spans)?)?,
        SelfTraceFormat::Chrome => {
            std::fs::write(path, chrome_trace_json_with_tracks(spans, flows, tracks))?
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_format::file::IntervalFileReader;

    fn span(stage: &'static str, label: &str, start: u64, dur: u64) -> FinishedSpan {
        span_on(stage, label, start, dur, 0, 0, 0)
    }

    #[allow(clippy::too_many_arguments)]
    fn span_on(
        stage: &'static str,
        label: &str,
        start: u64,
        dur: u64,
        tid: u64,
        id: u64,
        parent: u64,
    ) -> FinishedSpan {
        FinishedSpan {
            stage,
            label: label.to_string(),
            start_ns: start,
            dur_ns: dur,
            id,
            parent,
            tid,
            aborted: false,
            cpu_ns: 0,
        }
    }

    #[test]
    fn spans_round_trip_as_intervals() {
        let spans = vec![
            span_on("convert", "convert node 0", 10, 100, 0, 1, 0),
            span_on("convert", "convert node 1", 20, 50, 0, 2, 1),
            span_on("merge", "merge node 0", 200, 40, 0, 3, 0),
        ];
        let bytes = self_trace_bytes(&spans).unwrap();
        let p = Profile::standard();
        let r = IntervalFileReader::open(&bytes, &p).unwrap();
        assert_eq!(r.threads.len(), 2); // (convert,0) + (merge,0) lanes
        assert_eq!(r.markers.len(), 3);
        let ivs: Vec<Interval> = r.intervals().map(|x| x.unwrap()).collect();
        assert_eq!(ivs.len(), 3);
        for w in ivs.windows(2) {
            assert!(w[0].end() <= w[1].end());
        }
        // The node-1 convert span kept its timing, marker binding, and
        // hierarchy ids (address = span id, addressEnd = parent id).
        let iv = ivs.iter().find(|iv| iv.start == 20).unwrap();
        assert_eq!(iv.duration, 50);
        let id = iv.extra(&p, "markerId").and_then(|v| v.as_uint()).unwrap();
        let name = &r.markers.iter().find(|(i, _)| *i as u64 == id).unwrap().1;
        assert_eq!(name, "convert node 1");
        assert_eq!(iv.extra(&p, "address").and_then(|v| v.as_uint()), Some(2));
        assert_eq!(
            iv.extra(&p, "addressEnd").and_then(|v| v.as_uint()),
            Some(1)
        );
    }

    #[test]
    fn per_thread_lanes_split_a_stage() {
        let spans = vec![
            span_on("pipeline", "worker a", 10, 100, 1, 1, 0),
            span_on("pipeline", "worker b", 10, 100, 2, 2, 0),
        ];
        let bytes = self_trace_bytes(&spans).unwrap();
        let p = Profile::standard();
        let r = IntervalFileReader::open(&bytes, &p).unwrap();
        // Same stage, two threads → two lanes (overlap stays laminar).
        assert_eq!(r.threads.len(), 2);
    }

    #[test]
    fn empty_span_log_still_writes_a_valid_file() {
        let bytes = self_trace_bytes(&[]).unwrap();
        let p = Profile::standard();
        let r = IntervalFileReader::open(&bytes, &p).unwrap();
        assert_eq!(r.intervals().count(), 0);
    }

    #[test]
    fn chrome_trace_emits_sorted_events_and_paired_flows() {
        let spans = vec![
            span_on("pipeline", "convert worker node 0", 2000, 5000, 1, 2, 1),
            span_on("cli", "pipeline", 1000, 9000, 0, 1, 0),
        ];
        let flows = vec![
            FlowPoint {
                link: 7,
                at_ns: 3000,
                tid: 1,
                begin: true,
            },
            FlowPoint {
                link: 7,
                at_ns: 4000,
                tid: 0,
                begin: false,
            },
            // Unpaired begin: must not be emitted.
            FlowPoint {
                link: 9,
                at_ns: 3500,
                tid: 1,
                begin: true,
            },
        ];
        let json = chrome_trace_json(&spans, &flows);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"s\",\"id\":7"));
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\",\"id\":7"));
        assert!(!json.contains("\"id\":9"), "unpaired flow leaked: {json}");
        // Span fields: ts in µs, hierarchy in args.
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"args\":{\"span\":2,\"parent\":1,\"aborted\":false}"));
        // Events are ts-sorted: the cli root (1µs) precedes the worker
        // (2µs) even though the input order was reversed.
        let root = json.find("\"name\":\"pipeline\"").unwrap();
        let worker = json.find("\"name\":\"convert worker node 0\"").unwrap();
        assert!(root < worker);
    }

    #[test]
    fn chrome_counter_tracks_interleave_and_cpu_shows_when_measured() {
        let mut s = span_on("convert", "convert node 0", 2000, 5000, 1, 2, 1);
        s.cpu_ns = 4200;
        let tracks = vec![CounterTrack {
            name: "queue depth".to_string(),
            points: vec![(1500, 3.0), (6000, 1.0)],
        }];
        let json = chrome_trace_json_with_tracks(&[s], &[], &tracks);
        assert!(json.contains("\"cpu_ns\":4200"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"name\":\"queue depth\""));
        assert!(json.contains("\"args\":{\"value\":3.000}"));
        // Counter points land in the ts-sorted stream: the 1.5µs point
        // precedes the 2µs span, the 6µs point follows it.
        let early = json.find("\"value\":3.000").unwrap();
        let span_at = json.find("\"ph\":\"X\"").unwrap();
        let late = json.find("\"value\":1.000").unwrap();
        assert!(early < span_at && span_at < late);
    }

    #[test]
    fn profiler_tracks_emit_deltas_from_cumulative_samples() {
        let mk = |at_ns, depth, sends, wait| ute_profile::CounterSample {
            at_ns,
            queue_depth: depth,
            blocked_sends: sends,
            blocked_recvs: 0,
            send_wait_ns: wait,
            recv_wait_ns: 0,
        };
        let tracks = profiler_tracks(&[mk(100, 2.0, 1, 1_000_000), mk(200, 3.0, 4, 3_000_000)]);
        assert_eq!(tracks.len(), 4);
        let by_name = |n: &str| tracks.iter().find(|t| t.name == n).unwrap();
        assert_eq!(by_name("queue depth").points, vec![(100, 2.0), (200, 3.0)]);
        // Cumulative counters become per-tick deltas.
        assert_eq!(
            by_name("blocked sends").points,
            vec![(100, 1.0), (200, 3.0)]
        );
        assert_eq!(by_name("send wait ms").points, vec![(100, 1.0), (200, 2.0)]);
        assert!(profiler_tracks(&[]).is_empty());
    }

    #[test]
    fn chrome_escapes_and_handles_empty() {
        let json = chrome_trace_json(&[], &[]);
        assert!(json.contains("\"traceEvents\""));
        let spans = vec![span("convert", "odd \"label\"\\path", 1, 1)];
        let json = chrome_trace_json(&spans, &[]);
        assert!(json.contains("odd \\\"label\\\"\\\\path"));
    }
}
